//! Directed, weighted road network embedded in the plane.
//!
//! The network is the alphabet provider of the string model of §2.1: in
//! vertex representation the alphabet is `V`, in edge representation it is
//! `E`. Adjacency is stored in CSR (compressed sparse row) form, so walking
//! the 2–4 out-neighbors of a vertex touches one contiguous slice.

use crate::geo::Point;
use std::collections::HashMap;

/// Vertex identifier (index into the network's vertex arrays).
pub type VertexId = u32;
/// Edge identifier (index into the network's edge array).
pub type EdgeId = u32;

/// A directed road segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub from: VertexId,
    pub to: VertexId,
    /// Segment length in meters; this is the `w(e)` used by SURS (Eq. 4).
    pub length: f64,
    /// Free-flow travel time in seconds, used to synthesize timestamps.
    pub travel_time: f64,
}

/// Incrementally builds a [`RoadNetwork`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    coords: Vec<Point>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex at `p` and returns its id.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        let id = self.coords.len() as VertexId;
        self.coords.push(p);
        id
    }

    /// Adds a directed edge; `length` in meters, `travel_time` in seconds.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the weight is not positive
    /// and finite (the filtering principle of §3.1 relies on positive costs).
    pub fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        length: f64,
        travel_time: f64,
    ) -> EdgeId {
        assert!(
            (from as usize) < self.coords.len(),
            "edge source out of range"
        );
        assert!(
            (to as usize) < self.coords.len(),
            "edge target out of range"
        );
        assert!(
            length > 0.0 && length.is_finite(),
            "edge length must be positive"
        );
        assert!(
            travel_time > 0.0 && travel_time.is_finite(),
            "travel time must be positive"
        );
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge {
            from,
            to,
            length,
            travel_time,
        });
        id
    }

    /// Convenience: both directions with the same weights.
    pub fn add_bidirectional(&mut self, a: VertexId, b: VertexId, length: f64, travel_time: f64) {
        self.add_edge(a, b, length, travel_time);
        self.add_edge(b, a, length, travel_time);
    }

    /// Finalizes into a [`RoadNetwork`] (builds CSR adjacency and the
    /// endpoint → edge-id lookup).
    pub fn build(self) -> RoadNetwork {
        RoadNetwork::from_parts(self.coords, self.edges)
    }
}

/// A directed, weighted, plane-embedded road network.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    coords: Vec<Point>,
    edges: Vec<Edge>,
    // CSR out-adjacency: out_off[v]..out_off[v+1] indexes out_list.
    out_off: Vec<u32>,
    out_list: Vec<(VertexId, EdgeId)>,
    // CSR in-adjacency.
    in_off: Vec<u32>,
    in_list: Vec<(VertexId, EdgeId)>,
    // (from, to) -> edge id, for path <-> edge-string conversion.
    edge_lookup: HashMap<(VertexId, VertexId), EdgeId>,
}

impl RoadNetwork {
    pub(crate) fn from_parts(coords: Vec<Point>, edges: Vec<Edge>) -> Self {
        let n = coords.len();
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        for e in &edges {
            out_deg[e.from as usize] += 1;
            in_deg[e.to as usize] += 1;
        }
        let mut out_off = Vec::with_capacity(n + 1);
        let mut in_off = Vec::with_capacity(n + 1);
        let (mut oacc, mut iacc) = (0u32, 0u32);
        out_off.push(0);
        in_off.push(0);
        for v in 0..n {
            oacc += out_deg[v];
            iacc += in_deg[v];
            out_off.push(oacc);
            in_off.push(iacc);
        }
        let mut out_list = vec![(0, 0); edges.len()];
        let mut in_list = vec![(0, 0); edges.len()];
        let mut out_cursor: Vec<u32> = out_off[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_off[..n].to_vec();
        let mut edge_lookup = HashMap::with_capacity(edges.len());
        for (eid, e) in edges.iter().enumerate() {
            let eid = eid as EdgeId;
            out_list[out_cursor[e.from as usize] as usize] = (e.to, eid);
            out_cursor[e.from as usize] += 1;
            in_list[in_cursor[e.to as usize] as usize] = (e.from, eid);
            in_cursor[e.to as usize] += 1;
            edge_lookup.insert((e.from, e.to), eid);
        }
        RoadNetwork {
            coords,
            edges,
            out_off,
            out_list,
            in_off,
            in_list,
            edge_lookup,
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn coord(&self, v: VertexId) -> Point {
        self.coords[v as usize]
    }

    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-neighbors of `v` as `(target, edge id)` pairs.
    pub fn out_neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let (s, e) = (
            self.out_off[v as usize] as usize,
            self.out_off[v as usize + 1] as usize,
        );
        &self.out_list[s..e]
    }

    /// In-neighbors of `v` as `(source, edge id)` pairs.
    pub fn in_neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let (s, e) = (
            self.in_off[v as usize] as usize,
            self.in_off[v as usize + 1] as usize,
        );
        &self.in_list[s..e]
    }

    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// The edge id for the pair `(from, to)`, if such an edge exists.
    pub fn find_edge(&self, from: VertexId, to: VertexId) -> Option<EdgeId> {
        self.edge_lookup.get(&(from, to)).copied()
    }

    /// Average out-degree; synthetic networks target the ~2.5–3.5 range
    /// typical of road networks (§5.2 of the paper: "typically three").
    pub fn avg_out_degree(&self) -> f64 {
        if self.coords.is_empty() {
            return 0.0;
        }
        self.edges.len() as f64 / self.coords.len() as f64
    }

    /// Checks that a vertex sequence is a path on the network (consecutive
    /// vertices joined by an edge).
    pub fn is_path(&self, vertices: &[VertexId]) -> bool {
        vertices
            .windows(2)
            .all(|w| self.find_edge(w[0], w[1]).is_some())
    }

    /// Converts a vertex path to the corresponding edge string (§2.1),
    /// returning `None` if the sequence is not a path.
    pub fn path_to_edges(&self, vertices: &[VertexId]) -> Option<Vec<EdgeId>> {
        vertices
            .windows(2)
            .map(|w| self.find_edge(w[0], w[1]))
            .collect()
    }

    /// Converts an edge string back to its vertex path; returns `None` if the
    /// edges are not consecutive or the string is empty.
    pub fn edges_to_path(&self, edges: &[EdgeId]) -> Option<Vec<VertexId>> {
        let first = *edges.first()?;
        let mut path = vec![self.edge(first).from, self.edge(first).to];
        for &eid in &edges[1..] {
            let e = self.edge(eid);
            if e.from != *path.last().unwrap() {
                return None;
            }
            path.push(e.to);
        }
        Some(path)
    }

    /// Undirected neighbor view used when symmetrizing shortest-path distance
    /// for NetEDR/NetERP (§2.2.3: "make the road network undirected"). When
    /// both directions exist with different weights the minimum is used.
    pub fn undirected_neighbors(&self, v: VertexId, mut f: impl FnMut(VertexId, f64)) {
        for &(to, eid) in self.out_neighbors(v) {
            let w = self.edge(eid).length;
            let w = match self.find_edge(to, v) {
                Some(back) => w.min(self.edge(back).length),
                None => w,
            };
            f(to, w);
        }
        for &(from, eid) in self.in_neighbors(v) {
            // Only emit pure in-neighbors here; symmetric pairs were handled above.
            if self.find_edge(v, from).is_none() {
                f(from, self.edge(eid).length);
            }
        }
    }

    /// Restricts the network to the vertex set `keep` (given as a boolean
    /// mask), remapping ids densely. Returns the subnetwork and the mapping
    /// `old id -> new id`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (RoadNetwork, Vec<Option<VertexId>>) {
        assert_eq!(keep.len(), self.num_vertices());
        let mut remap: Vec<Option<VertexId>> = vec![None; keep.len()];
        let mut coords = Vec::new();
        for (v, &k) in keep.iter().enumerate() {
            if k {
                remap[v] = Some(coords.len() as VertexId);
                coords.push(self.coords[v]);
            }
        }
        let mut edges = Vec::new();
        for e in &self.edges {
            if let (Some(f), Some(t)) = (remap[e.from as usize], remap[e.to as usize]) {
                edges.push(Edge {
                    from: f,
                    to: t,
                    ..*e
                });
            }
        }
        (RoadNetwork::from_parts(coords, edges), remap)
    }

    /// Vertex ids of the largest strongly connected component (iterative
    /// Kosaraju). Generators prune to this so random walks never dead-end.
    pub fn largest_scc(&self) -> Vec<bool> {
        let n = self.num_vertices();
        // First pass: DFS finishing order on the forward graph.
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for start in 0..n as u32 {
            if visited[start as usize] {
                continue;
            }
            // Iterative DFS storing (vertex, next-neighbor-index).
            let mut stack = vec![(start, 0usize)];
            visited[start as usize] = true;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                let nbrs = self.out_neighbors(v);
                if *i < nbrs.len() {
                    let (to, _) = nbrs[*i];
                    *i += 1;
                    if !visited[to as usize] {
                        visited[to as usize] = true;
                        stack.push((to, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Second pass: reverse graph, components in reverse finishing order.
        let mut comp = vec![u32::MAX; n];
        let mut ncomp = 0u32;
        for &start in order.iter().rev() {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start as usize] = ncomp;
            while let Some(v) = stack.pop() {
                for &(from, _) in self.in_neighbors(v) {
                    if comp[from as usize] == u32::MAX {
                        comp[from as usize] = ncomp;
                        stack.push(from);
                    }
                }
            }
            ncomp += 1;
        }
        let mut sizes = vec![0usize; ncomp as usize];
        for &c in &comp {
            sizes[c as usize] += 1;
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        comp.iter().map(|&c| c == best).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> RoadNetwork {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0 (cycle back)
        let mut b = GraphBuilder::new();
        for (x, y) in [(0.0, 0.0), (1.0, 1.0), (1.0, -1.0), (2.0, 0.0)] {
            b.add_vertex(Point::new(x, y));
        }
        b.add_edge(0, 1, 1.5, 1.0);
        b.add_edge(1, 3, 1.5, 1.0);
        b.add_edge(0, 2, 1.5, 1.0);
        b.add_edge(2, 3, 1.5, 1.0);
        b.add_edge(3, 0, 2.0, 1.0);
        b.build()
    }

    #[test]
    fn csr_adjacency_matches_edges() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        let mut outs: Vec<VertexId> = g.out_neighbors(0).iter().map(|&(v, _)| v).collect();
        outs.sort();
        assert_eq!(outs, vec![1, 2]);
        let ins: Vec<VertexId> = g.in_neighbors(3).iter().map(|&(v, _)| v).collect();
        assert_eq!(
            {
                let mut v = ins;
                v.sort();
                v
            },
            vec![1, 2]
        );
    }

    #[test]
    fn edge_lookup_roundtrip() {
        let g = diamond();
        let e = g.find_edge(0, 1).unwrap();
        assert_eq!(g.edge(e).from, 0);
        assert_eq!(g.edge(e).to, 1);
        assert_eq!(g.find_edge(1, 0), None);
    }

    #[test]
    fn path_edge_conversion_roundtrip() {
        let g = diamond();
        let path = vec![0, 1, 3, 0, 2];
        assert!(g.is_path(&path));
        let edges = g.path_to_edges(&path).unwrap();
        assert_eq!(edges.len(), 4);
        assert_eq!(g.edges_to_path(&edges).unwrap(), path);
    }

    #[test]
    fn non_path_rejected() {
        let g = diamond();
        assert!(!g.is_path(&[0, 3]));
        assert_eq!(g.path_to_edges(&[0, 3]), None);
    }

    #[test]
    fn edges_to_path_rejects_gap() {
        let g = diamond();
        let e01 = g.find_edge(0, 1).unwrap();
        let e23 = g.find_edge(2, 3).unwrap();
        assert_eq!(g.edges_to_path(&[e01, e23]), None);
        assert_eq!(g.edges_to_path(&[]), None);
    }

    #[test]
    fn scc_of_diamond_is_everything() {
        let g = diamond();
        let keep = g.largest_scc();
        assert!(keep.iter().all(|&k| k));
    }

    #[test]
    fn scc_drops_dangling_vertex() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        // 0 <-> 1 strongly connected; 2 reachable but no return; 3 isolated.
        b.add_edge(0, 1, 1.0, 1.0);
        b.add_edge(1, 0, 1.0, 1.0);
        b.add_edge(1, 2, 1.0, 1.0);
        let g = b.build();
        let keep = g.largest_scc();
        assert_eq!(keep, vec![true, true, false, false]);
        let (sub, remap) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(remap[2], None);
        assert!(remap[0].is_some() && remap[1].is_some());
    }

    #[test]
    fn undirected_neighbors_symmetrize_min() {
        let mut b = GraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(0, 1, 5.0, 1.0);
        b.add_edge(1, 0, 3.0, 1.0);
        let g = b.build();
        let mut seen = Vec::new();
        g.undirected_neighbors(0, |v, w| seen.push((v, w)));
        assert_eq!(seen, vec![(1, 3.0)]);
    }

    #[test]
    fn undirected_neighbors_include_pure_in_edges() {
        let mut b = GraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(1, 0, 4.0, 1.0);
        let g = b.build();
        let mut seen = Vec::new();
        g.undirected_neighbors(0, |v, w| seen.push((v, w)));
        assert_eq!(seen, vec![(1, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_weight_edge_rejected() {
        let mut b = GraphBuilder::new();
        b.add_vertex(Point::new(0.0, 0.0));
        b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(0, 1, 0.0, 1.0);
    }
}
