//! Hub labeling (pruned landmark labeling) for fast shortest-path-distance
//! queries.
//!
//! NetEDR and NetERP substitute costs are shortest-path distances (§2.2.3).
//! Verification evaluates `sub(a, b)` inside the inner DP loop, so the paper
//! recommends a hub-labeling index (§4.2, refs [1, 2]). This is the pruned
//! landmark labeling of Akiba et al. over the *undirected symmetrization* of
//! the network, which is exactly the regime the paper uses to keep WED
//! symmetric.

use crate::graph::{RoadNetwork, VertexId};
use crate::TotalF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A 2-hop-cover distance index over the undirected road network.
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// `labels[v]` = sorted `(landmark rank, distance)` pairs.
    labels: Vec<Vec<(u32, f64)>>,
    /// rank -> original vertex id (for diagnostics).
    order: Vec<VertexId>,
}

impl HubLabels {
    /// Builds the index by pruned Dijkstra from every vertex in descending
    /// degree order (a standard, effective landmark order for road networks).
    pub fn build(g: &RoadNetwork) -> Self {
        let n = g.num_vertices();
        let mut order: Vec<VertexId> = (0..n as u32).collect();
        // Degree = undirected degree; ties broken by id for determinism.
        order.sort_by_key(|&v| (Reverse(g.out_degree(v) + g.in_neighbors(v).len()), v));

        let mut labels: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        // Scratch: current tentative distances, visited list for cleanup.
        let mut dist = vec![f64::INFINITY; n];
        let mut root_dist = vec![f64::INFINITY; n]; // distances from current root's labels
        for (rank, &root) in order.iter().enumerate() {
            let rank = rank as u32;
            // Load the root's current labels for O(1)-ish pruning queries.
            for &(r, d) in &labels[root as usize] {
                root_dist[r as usize] = d;
            }
            let mut heap = BinaryHeap::new();
            let mut touched = vec![root];
            dist[root as usize] = 0.0;
            heap.push(Reverse((TotalF64(0.0), root)));
            while let Some(Reverse((TotalF64(d), v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                // Prune: if existing labels already certify dist(root, v) <= d,
                // v (and everything through it) needs no new label.
                let mut certified = f64::INFINITY;
                for &(r, dv) in &labels[v as usize] {
                    let dr = root_dist[r as usize];
                    if dr.is_finite() {
                        certified = certified.min(dr + dv);
                    }
                }
                if certified <= d {
                    continue;
                }
                labels[v as usize].push((rank, d));
                g.undirected_neighbors(v, |to, w| {
                    let nd = d + w;
                    if nd < dist[to as usize] {
                        if dist[to as usize].is_infinite() {
                            touched.push(to);
                        }
                        dist[to as usize] = nd;
                        heap.push(Reverse((TotalF64(nd), to)));
                    }
                });
            }
            for v in touched {
                dist[v as usize] = f64::INFINITY;
            }
            for &(r, _) in &labels[root as usize] {
                root_dist[r as usize] = f64::INFINITY;
            }
        }
        // Labels are generated in increasing rank order already, but assert in
        // debug builds since `query` relies on it for the merge join.
        debug_assert!(labels.iter().all(|l| l.windows(2).all(|w| w[0].0 < w[1].0)));
        HubLabels { labels, order }
    }

    /// Undirected shortest-path distance between `u` and `v`
    /// (`f64::INFINITY` if disconnected).
    pub fn query(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        let (a, b) = (&self.labels[u as usize], &self.labels[v as usize]);
        let (mut i, mut j) = (0, 0);
        let mut best = f64::INFINITY;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = a[i].1 + b[j].1;
                    if d < best {
                        best = d;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Average number of label entries per vertex (index-size diagnostic).
    pub fn avg_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(Vec::len).sum::<usize>() as f64 / self.labels.len() as f64
    }

    /// Total number of label entries.
    pub fn total_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Approximate index memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.total_entries() * std::mem::size_of::<(u32, f64)>()
            + self.order.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{sssp, Mode};
    use crate::generator::{CityParams, NetworkKind};
    use crate::geo::Point;
    use crate::graph::GraphBuilder;

    #[test]
    fn query_matches_dijkstra_on_small_grid() {
        let g = CityParams::tiny(NetworkKind::Grid).seed(7).generate();
        let hl = HubLabels::build(&g);
        for src in [0u32, 1, g.num_vertices() as u32 / 2] {
            let d = sssp(&g, src, Mode::UndirectedLength);
            for v in 0..g.num_vertices() as u32 {
                let q = hl.query(src, v);
                if d[v as usize].is_infinite() {
                    assert!(q.is_infinite());
                } else {
                    assert!(
                        (q - d[v as usize]).abs() < 1e-6,
                        "hub {q} vs dijkstra {} for {src}->{v}",
                        d[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn query_is_symmetric_and_zero_on_diagonal() {
        let g = CityParams::tiny(NetworkKind::Grid).seed(9).generate();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.query(3, 3), 0.0);
        assert_eq!(hl.query(0, 5), hl.query(5, 0));
    }

    #[test]
    fn disconnected_components_are_infinite() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(Point::new(i as f64, 0.0));
        }
        b.add_bidirectional(0, 1, 1.0, 1.0);
        b.add_bidirectional(2, 3, 1.0, 1.0);
        let g = b.build();
        let hl = HubLabels::build(&g);
        assert_eq!(hl.query(0, 1), 1.0);
        assert!(hl.query(0, 2).is_infinite());
    }

    #[test]
    fn label_sizes_are_reported() {
        let g = CityParams::tiny(NetworkKind::Grid).seed(11).generate();
        let hl = HubLabels::build(&g);
        assert!(hl.avg_label_size() >= 1.0);
        assert!(hl.size_bytes() > 0);
        assert_eq!(
            hl.total_entries(),
            (hl.avg_label_size() * g.num_vertices() as f64).round() as usize
        );
    }
}
