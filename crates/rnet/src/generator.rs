//! Synthetic road-network generation.
//!
//! The paper evaluates on OSM road networks (Beijing, Porto, Singapore, San
//! Francisco). Those datasets are not available here, so — per the
//! substitution rule in `DESIGN.md` §4 — we generate networks that reproduce
//! the structural properties the algorithms exploit:
//!
//! * **sparsity**: small out-degree (≈3), which drives bidirectional-trie
//!   cache sharing (§5.2);
//! * **spatial embedding**: coordinates in meters so Euclidean / network
//!   distances behave like city-scale data;
//! * **positive edge weights** (lengths) and free-flow travel times, so SURS
//!   costs and timestamps are realistic;
//! * **one-way streets and irregular blocks**, so directed reachability is
//!   non-trivial.
//!
//! The generator builds a jittered grid, deletes random blocks (parks,
//! rivers), marks arterial rows/columns as fast roads, converts a fraction of
//! streets to one-way, optionally adds diagonal shortcuts, and finally prunes
//! to the largest strongly connected component so random walks never
//! dead-end.

use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Network family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Plain bidirectional grid, no removals — predictable topology for
    /// tests.
    Grid,
    /// City-like: jitter, block removal, one-ways, diagonals.
    City,
}

/// Parameters for synthetic network generation.
#[derive(Debug, Clone)]
pub struct CityParams {
    pub kind: NetworkKind,
    /// Grid columns.
    pub width: usize,
    /// Grid rows.
    pub height: usize,
    /// Block edge length in meters.
    pub spacing: f64,
    /// Coordinate jitter as a fraction of `spacing`.
    pub jitter: f64,
    /// Probability a grid vertex is removed (city kind only).
    pub block_removal: f64,
    /// Probability a street is one-way (city kind only).
    pub oneway: f64,
    /// Probability of a diagonal shortcut per cell (city kind only).
    pub diagonal: f64,
    /// Every `arterial_every`-th row/column is a fast arterial.
    pub arterial_every: usize,
    pub seed: u64,
}

impl CityParams {
    /// ~64-vertex network for unit tests.
    pub fn tiny(kind: NetworkKind) -> Self {
        CityParams {
            width: 8,
            height: 8,
            ..Self::base(kind)
        }
    }

    /// ~1k-vertex network for integration tests and examples.
    pub fn small(kind: NetworkKind) -> Self {
        CityParams {
            width: 32,
            height: 32,
            ..Self::base(kind)
        }
    }

    /// ~4k-vertex network for experiments at default scale.
    pub fn medium(kind: NetworkKind) -> Self {
        CityParams {
            width: 64,
            height: 64,
            ..Self::base(kind)
        }
    }

    /// ~16k-vertex network for larger experiment scales.
    pub fn large(kind: NetworkKind) -> Self {
        CityParams {
            width: 128,
            height: 128,
            ..Self::base(kind)
        }
    }

    fn base(kind: NetworkKind) -> Self {
        CityParams {
            kind,
            width: 8,
            height: 8,
            spacing: 120.0,
            jitter: 0.18,
            block_removal: 0.06,
            oneway: 0.22,
            diagonal: 0.05,
            arterial_every: 5,
            seed: 0,
        }
    }

    /// Returns a copy with the given seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given dimensions.
    pub fn dims(mut self, width: usize, height: usize) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Generates the network (deterministic in the parameters).
    pub fn generate(&self) -> RoadNetwork {
        assert!(
            self.width >= 2 && self.height >= 2,
            "network must have at least 2x2 cells"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let city = self.kind == NetworkKind::City;

        // Vertex liveness and placement.
        let mut alive = vec![true; self.width * self.height];
        if city {
            for a in alive.iter_mut() {
                if rng.gen::<f64>() < self.block_removal {
                    *a = false;
                }
            }
        }
        let mut b = GraphBuilder::new();
        let mut vid = vec![u32::MAX; self.width * self.height];
        let mut pts = vec![Point::default(); self.width * self.height];
        for r in 0..self.height {
            for c in 0..self.width {
                let cell = r * self.width + c;
                if !alive[cell] {
                    continue;
                }
                let (jx, jy) = if city {
                    (
                        rng.gen_range(-self.jitter..self.jitter) * self.spacing,
                        rng.gen_range(-self.jitter..self.jitter) * self.spacing,
                    )
                } else {
                    (0.0, 0.0)
                };
                let p = Point::new(c as f64 * self.spacing + jx, r as f64 * self.spacing + jy);
                pts[cell] = p;
                vid[cell] = b.add_vertex(p);
            }
        }

        // Speeds in m/s: arterials ~60 km/h, side streets ~30 km/h.
        let arterial_speed = 16.7;
        let street_speed = 8.3;
        let is_arterial = |r: usize, c: usize, horizontal: bool| {
            if horizontal {
                r.is_multiple_of(self.arterial_every)
            } else {
                c.is_multiple_of(self.arterial_every)
            }
        };

        let add_street = |b: &mut GraphBuilder,
                          rng: &mut ChaCha8Rng,
                          u: u32,
                          v: u32,
                          pu: Point,
                          pv: Point,
                          arterial: bool| {
            let len = pu.dist(&pv).max(1.0);
            let speed = if arterial {
                arterial_speed
            } else {
                street_speed
            };
            let tt = len / speed;
            if city && rng.gen::<f64>() < self.oneway {
                if rng.gen::<bool>() {
                    b.add_edge(u, v, len, tt);
                } else {
                    b.add_edge(v, u, len, tt);
                }
            } else {
                b.add_bidirectional(u, v, len, tt);
            }
        };

        for r in 0..self.height {
            for c in 0..self.width {
                let cell = r * self.width + c;
                if vid[cell] == u32::MAX {
                    continue;
                }
                // East neighbor.
                if c + 1 < self.width {
                    let e = cell + 1;
                    if vid[e] != u32::MAX {
                        add_street(
                            &mut b,
                            &mut rng,
                            vid[cell],
                            vid[e],
                            pts[cell],
                            pts[e],
                            is_arterial(r, c, true),
                        );
                    }
                }
                // South neighbor.
                if r + 1 < self.height {
                    let s = cell + self.width;
                    if vid[s] != u32::MAX {
                        add_street(
                            &mut b,
                            &mut rng,
                            vid[cell],
                            vid[s],
                            pts[cell],
                            pts[s],
                            is_arterial(r, c, false),
                        );
                    }
                }
                // Diagonal shortcut.
                if city && c + 1 < self.width && r + 1 < self.height {
                    let d = cell + self.width + 1;
                    if vid[d] != u32::MAX && rng.gen::<f64>() < self.diagonal {
                        add_street(
                            &mut b, &mut rng, vid[cell], vid[d], pts[cell], pts[d], false,
                        );
                    }
                }
            }
        }

        let g = b.build();
        // Prune to the largest SCC so every vertex can continue a walk.
        let keep = g.largest_scc();
        let (g, _) = g.induced_subgraph(&keep);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_size_and_degree() {
        let g = CityParams::tiny(NetworkKind::Grid).generate();
        assert_eq!(g.num_vertices(), 64);
        // Bidirectional grid: 2 * (2*8*7) = 224 directed edges.
        assert_eq!(g.num_edges(), 224);
        // Interior vertices have out-degree 4.
        let deg: Vec<usize> = (0..g.num_vertices() as u32)
            .map(|v| g.out_degree(v))
            .collect();
        assert!(deg.iter().all(|&d| (2..=4).contains(&d)));
    }

    #[test]
    fn city_is_strongly_connected_and_sparse() {
        let g = CityParams::small(NetworkKind::City).seed(42).generate();
        assert!(
            g.num_vertices() > 500,
            "too much of the grid was pruned: {}",
            g.num_vertices()
        );
        let keep = g.largest_scc();
        assert!(
            keep.iter().all(|&k| k),
            "generator must return a single SCC"
        );
        let avg = g.avg_out_degree();
        assert!(
            (1.5..=4.2).contains(&avg),
            "avg out-degree {avg} outside road-network range"
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = CityParams::tiny(NetworkKind::City).seed(5).generate();
        let b = CityParams::tiny(NetworkKind::City).seed(5).generate();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea, eb);
        }
        let c = CityParams::tiny(NetworkKind::City).seed(6).generate();
        // Different seed should (overwhelmingly) give a different network.
        assert!(a.num_edges() != c.num_edges() || a.coords()[0] != c.coords()[0]);
    }

    #[test]
    fn edge_lengths_are_positive_and_city_scale() {
        let g = CityParams::small(NetworkKind::City).seed(1).generate();
        for e in g.edges() {
            assert!(e.length > 0.0);
            assert!(e.length < 600.0, "street length {} too long", e.length);
            assert!(e.travel_time > 0.0);
        }
    }

    #[test]
    fn arterials_are_faster() {
        let g = CityParams::small(NetworkKind::Grid).seed(2).generate();
        // On the pure grid all lengths equal spacing; arterial edges must have
        // smaller travel time than side streets of the same length.
        let mut fast = f64::INFINITY;
        let mut slow: f64 = 0.0;
        for e in g.edges() {
            let speed = e.length / e.travel_time;
            fast = fast.min(speed);
            slow = slow.max(speed);
        }
        assert!(
            slow > fast * 1.5,
            "expected distinct speed classes: {fast} vs {slow}"
        );
    }
}
