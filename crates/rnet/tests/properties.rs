//! Property-based tests of the road-network substrate.

use proptest::prelude::*;
use rnet::dijkstra::{bounded, shortest_path, sssp, Mode};
use rnet::{CityParams, GraphBuilder, HubLabels, KdTree, NetworkKind, Point};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// kd-tree range queries equal a linear scan.
    #[test]
    fn kdtree_range_equals_scan(
        pts in arb_points(120),
        cx in -600.0f64..600.0,
        cy in -600.0f64..600.0,
        r in 0.0f64..400.0,
    ) {
        let tree = KdTree::build(&pts);
        let c = Point::new(cx, cy);
        let mut got = tree.range(c, r);
        got.sort();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&c) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// kd-tree nearest equals a linear scan.
    #[test]
    fn kdtree_nearest_equals_scan(
        pts in arb_points(120),
        cx in -600.0f64..600.0,
        cy in -600.0f64..600.0,
    ) {
        let tree = KdTree::build(&pts);
        let c = Point::new(cx, cy);
        let (_, got) = tree.nearest(c).unwrap();
        let want = pts.iter().map(|p| p.dist(&c)).fold(f64::INFINITY, f64::min);
        prop_assert!((got - want).abs() < 1e-9);
    }

    /// nearest_outside returns the minimum distance strictly beyond r.
    #[test]
    fn kdtree_nearest_outside_equals_scan(
        pts in arb_points(100),
        r in 0.0f64..300.0,
        pick in 0usize..100,
    ) {
        let tree = KdTree::build(&pts);
        let c = pts[pick % pts.len()];
        let want = pts.iter().map(|p| p.dist(&c)).filter(|&d| d > r).fold(f64::INFINITY, f64::min);
        match tree.nearest_outside(c, r) {
            Some((_, d)) => prop_assert!((d - want).abs() < 1e-9),
            None => prop_assert!(want.is_infinite()),
        }
    }

    /// Triangle inequality of shortest-path distances on generated networks:
    /// d(a,c) <= d(a,b) + d(b,c) in the undirected symmetrization.
    #[test]
    fn sp_triangle_inequality(seed in 0u64..16, a in 0u32..64, b in 0u32..64, c in 0u32..64) {
        let g = CityParams::tiny(NetworkKind::City).seed(seed).generate();
        let n = g.num_vertices() as u32;
        let (a, b, c) = (a % n, b % n, c % n);
        let da = sssp(&g, a, Mode::UndirectedLength);
        let db = sssp(&g, b, Mode::UndirectedLength);
        prop_assert!(da[c as usize] <= da[b as usize] + db[c as usize] + 1e-6);
    }

    /// Hub-label queries equal Dijkstra on random generated networks.
    #[test]
    fn hub_labels_equal_dijkstra(seed in 0u64..12, src in 0u32..64) {
        let g = CityParams::tiny(NetworkKind::City).seed(seed).generate();
        let src = src % g.num_vertices() as u32;
        let hl = HubLabels::build(&g);
        let d = sssp(&g, src, Mode::UndirectedLength);
        for v in 0..g.num_vertices() as u32 {
            let q = hl.query(src, v);
            if d[v as usize].is_finite() {
                prop_assert!((q - d[v as usize]).abs() < 1e-6);
            } else {
                prop_assert!(q.is_infinite());
            }
        }
    }

    /// Bounded Dijkstra's in-radius set and next-beyond agree with full SSSP.
    #[test]
    fn bounded_agrees_with_sssp(seed in 0u64..12, src in 0u32..64, radius in 0.0f64..2000.0) {
        let g = CityParams::tiny(NetworkKind::City).seed(seed).generate();
        let src = src % g.num_vertices() as u32;
        let full = sssp(&g, src, Mode::UndirectedLength);
        let b = bounded(&g, src, radius, Mode::UndirectedLength);
        let within: std::collections::HashSet<u32> = b.within.iter().map(|&(v, _)| v).collect();
        for v in 0..g.num_vertices() as u32 {
            let d = full[v as usize];
            prop_assert_eq!(within.contains(&v), d <= radius, "v={} d={} r={}", v, d, radius);
        }
        let want_beyond = full.iter().cloned().filter(|&d| d > radius).fold(f64::INFINITY, f64::min);
        match b.next_beyond {
            Some(d) => prop_assert!((d - want_beyond).abs() < 1e-9),
            None => prop_assert!(want_beyond.is_infinite()),
        }
    }

    /// Point-to-point shortest path cost matches SSSP and the path is valid.
    #[test]
    fn p2p_matches_sssp(seed in 0u64..12, s in 0u32..64, t in 0u32..64) {
        let g = CityParams::tiny(NetworkKind::City).seed(seed).generate();
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let full = sssp(&g, s, Mode::DirectedLength);
        match shortest_path(&g, s, t, Mode::DirectedLength) {
            Some((path, cost)) => {
                prop_assert!((cost - full[t as usize]).abs() < 1e-9);
                prop_assert!(g.is_path(&path));
                prop_assert_eq!(*path.first().unwrap(), s);
                prop_assert_eq!(*path.last().unwrap(), t);
                // Path cost really is the sum of its edge lengths.
                let sum: f64 = path.windows(2).map(|w| g.edge(g.find_edge(w[0], w[1]).unwrap()).length).sum();
                prop_assert!((sum - cost).abs() < 1e-9);
            }
            None => prop_assert!(full[t as usize].is_infinite()),
        }
    }

    /// Generated city networks are strongly connected with positive weights.
    #[test]
    fn generated_networks_are_wellformed(seed in 0u64..24) {
        let g = CityParams::tiny(NetworkKind::City).seed(seed).generate();
        prop_assert!(g.num_vertices() >= 2);
        prop_assert!(g.largest_scc().iter().all(|&k| k));
        for e in g.edges() {
            prop_assert!(e.length > 0.0 && e.travel_time > 0.0);
        }
    }
}

#[test]
fn builder_roundtrip_smoke() {
    let mut b = GraphBuilder::new();
    let v0 = b.add_vertex(Point::new(0.0, 0.0));
    let v1 = b.add_vertex(Point::new(10.0, 0.0));
    b.add_bidirectional(v0, v1, 10.0, 1.0);
    let g = b.build();
    assert_eq!(g.num_edges(), 2);
    assert_eq!(sssp(&g, v0, Mode::DirectedLength)[v1 as usize], 10.0);
}
