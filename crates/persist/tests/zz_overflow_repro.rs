//! Regression: a crafted meta `total` used to overflow `total * 8` in
//! decode (panic in debug builds); it must yield a typed error instead.

use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::compact::write_varint;
use trajsearch_core::InvertedIndex;
use trajsearch_persist::{crc32, Snapshot, HEADER_LEN, MANIFEST_ENTRY_LEN};

fn rebuild_with_meta(bytes: &[u8], new_meta: Vec<u8>) -> Vec<u8> {
    // Parse manifest, swap out the meta (kind 1) payload, reassemble with
    // recomputed offsets and CRCs.
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();
    for i in 0..count {
        let base = HEADER_LEN + i * MANIFEST_ENTRY_LEN;
        let kind = u32::from_le_bytes(bytes[base..base + 4].try_into().unwrap());
        let off = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().unwrap()) as usize;
        let payload = if kind == 1 {
            new_meta.clone()
        } else {
            bytes[off..off + len].to_vec()
        };
        sections.push((kind, payload));
    }
    let manifest_len = sections.len() * MANIFEST_ENTRY_LEN;
    let mut offset = (HEADER_LEN + manifest_len) as u64;
    let mut manifest = Vec::new();
    for (kind, payload) in &sections {
        manifest.extend_from_slice(&kind.to_le_bytes());
        manifest.extend_from_slice(&offset.to_le_bytes());
        manifest.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        manifest.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    let mut head = Vec::new();
    head.extend_from_slice(&bytes[..8]); // magic, version, flags
    head.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    head.extend_from_slice(&manifest);
    let header_crc = crc32(&head);
    let mut out = Vec::new();
    out.extend_from_slice(&head[..12]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(&manifest);
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

#[test]
fn huge_total_in_meta_must_not_panic() {
    let mut s = TrajectoryStore::new();
    s.push(Trajectory::new(vec![0, 1, 2], vec![1.0, 2.0, 3.0]));
    let idx = InvertedIndex::build(&s, 4);
    let bytes = Snapshot::encode(&s, &idx).unwrap();

    // meta = varint(n=1), varint(alphabet=4), varint(total = 2^61)
    let mut meta = Vec::new();
    write_varint(&mut meta, 1);
    write_varint(&mut meta, 4);
    write_varint(&mut meta, 1u64 << 61);
    let crafted = rebuild_with_meta(&bytes, meta);
    // Must be a typed error, not a panic.
    let res = Snapshot::decode(&crafted);
    assert!(res.is_err());
}
