//! Corruption coverage (satellite 3): every way a snapshot file can go bad
//! must surface as a typed [`SnapshotError`] — never a panic, never an
//! `Ok` carrying silently wrong data.
//!
//! The properties cover, over valid snapshots with and without the
//! temporal section:
//!
//! * truncation at **every** possible length (proptest samples the range,
//!   a unit test sweeps short files exhaustively);
//! * a single byte flipped at any position, with any non-zero XOR mask —
//!   every byte of the file is covered by some checksum or typed header
//!   check, so no flip may survive;
//! * targeted flips inside each manifest-declared section, which must be
//!   attributed to **that** section by name;
//! * wrong magic, future/unknown version, unknown flag bits, and absurd
//!   section counts.

use proptest::prelude::*;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{InvertedIndex, PostingSource};
use trajsearch_persist::{
    Snapshot, SnapshotError, SnapshotErrorKind, FLAG_TEMPORAL, FORMAT_VERSION, HEADER_LEN, MAGIC,
    MANIFEST_ENTRY_LEN,
};

const ALPHABET: usize = 9;

/// A deterministic, non-trivial store: enough trajectories that every
/// section has real content and multi-byte varints appear in the arena.
fn store() -> TrajectoryStore {
    let mut s = TrajectoryStore::new();
    for i in 0..40u64 {
        let len = 1 + (i * 7 % 9) as usize;
        let path: Vec<u32> = (0..len)
            .map(|k| ((i as usize * 31 + k * 13) % ALPHABET) as u32)
            .collect();
        let t0 = i as f64 * 3.5;
        let times: Vec<f64> = (0..len).map(|k| t0 + k as f64 * 0.5).collect();
        s.push(Trajectory::new(path, times));
    }
    s
}

fn snapshot_bytes(temporal: bool) -> Vec<u8> {
    let s = store();
    let mut idx = InvertedIndex::build(&s, ALPHABET);
    if temporal {
        idx.enable_temporal_postings();
    }
    Snapshot::encode(&s, &idx).expect("valid inputs encode")
}

fn section_name(kind: u32) -> &'static str {
    ["meta", "paths", "times", "spans", "postings", "temporal"][kind as usize - 1]
}

/// Manifest entries parsed from *pristine* bytes using only the public
/// format constants, so tests can aim mutations at specific sections.
fn manifest(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let base = HEADER_LEN + i * MANIFEST_ENTRY_LEN;
            let kind = u32::from_le_bytes(bytes[base..base + 4].try_into().unwrap());
            let offset =
                u64::from_le_bytes(bytes[base + 4..base + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().unwrap()) as usize;
            (kind, offset, len)
        })
        .collect()
}

#[test]
fn pristine_snapshots_decode() {
    for temporal in [false, true] {
        let bytes = snapshot_bytes(temporal);
        let snap = Snapshot::decode(&bytes).expect("pristine bytes decode");
        assert_eq!(snap.store().len(), 40);
        assert_eq!(snap.index().has_temporal_postings(), temporal);
        // The manifest is well-formed and covers the whole file.
        let entries = manifest(&bytes);
        assert_eq!(entries.len(), if temporal { 6 } else { 5 });
        let end = entries.iter().map(|&(_, o, l)| o + l).max().unwrap();
        assert_eq!(end, bytes.len());
    }
}

#[test]
fn every_short_prefix_is_rejected_without_panic() {
    let bytes = snapshot_bytes(true);
    // Exhaustive over the header + manifest region, where parsing is most
    // position-sensitive; the payload region is sampled by the proptest.
    let dense = HEADER_LEN + 7 * MANIFEST_ENTRY_LEN;
    for cut in 0..dense.min(bytes.len()) {
        let err = Snapshot::decode(&bytes[..cut]).expect_err("prefix must fail");
        assert!(
            matches!(
                err.kind(),
                SnapshotErrorKind::Truncated | SnapshotErrorKind::ChecksumMismatch
            ),
            "cut={cut}: unexpected {err:?}"
        );
    }
}

#[test]
fn wrong_magic_future_version_unknown_flags() {
    let bytes = snapshot_bytes(false);
    for i in 0..4 {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        match Snapshot::decode(&bad).expect_err("magic") {
            SnapshotError::BadMagic { found } => assert_ne!(found, MAGIC),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }
    for version in [0u16, FORMAT_VERSION + 1, 0x7fff, u16::MAX] {
        let mut bad = bytes.clone();
        bad[4..6].copy_from_slice(&version.to_le_bytes());
        match Snapshot::decode(&bad).expect_err("version") {
            SnapshotError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, version);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }
    for flag_bit in 1..16 {
        let flags = 1u16 << flag_bit;
        if flags == FLAG_TEMPORAL {
            continue; // known bit: flipping it is covered by the CRC tests
        }
        let mut bad = bytes.clone();
        let new_flags = flags | (bad[6] as u16);
        bad[6..8].copy_from_slice(&new_flags.to_le_bytes());
        assert_eq!(
            Snapshot::decode(&bad).expect_err("flags").kind(),
            SnapshotErrorKind::UnknownFlags,
            "flag bit {flag_bit}"
        );
    }
    // An absurd section count is refused before any allocation.
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        Snapshot::decode(&bad).expect_err("count").kind(),
        SnapshotErrorKind::Corrupt
    );
}

#[test]
fn flips_inside_each_section_are_attributed_to_it() {
    for temporal in [false, true] {
        let bytes = snapshot_bytes(temporal);
        for (kind, offset, len) in manifest(&bytes) {
            assert!(len > 0, "section {} is empty", section_name(kind));
            for probe in [0, len / 2, len - 1] {
                let mut bad = bytes.clone();
                bad[offset + probe] ^= 0x55;
                match Snapshot::decode(&bad).expect_err("flip must fail") {
                    SnapshotError::ChecksumMismatch { section, .. } => {
                        assert_eq!(section, section_name(kind), "flip at {probe} misattributed");
                    }
                    other => panic!(
                        "expected ChecksumMismatch in {}, got {other:?}",
                        section_name(kind)
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation anywhere in the file: typed error, never a panic and
    /// never a short-but-valid decode.
    #[test]
    fn truncation_anywhere_is_typed(cut_frac in 0.0f64..1.0, temporal_i in 0usize..2) {
        let bytes = snapshot_bytes(temporal_i == 1);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        let err = Snapshot::decode(&bytes[..cut]).expect_err("truncated file must fail");
        prop_assert!(
            matches!(
                err.kind(),
                SnapshotErrorKind::Truncated | SnapshotErrorKind::ChecksumMismatch
            ),
            "cut={}: unexpected {:?}",
            cut,
            err
        );
    }

    /// A single flipped byte anywhere: typed error, never Ok. (Every byte
    /// of the file is covered by a checksum or a typed header check.)
    #[test]
    fn single_byte_flip_anywhere_is_typed(
        pos_frac in 0.0f64..1.0,
        mask in 1u32..256,
        temporal_i in 0usize..2,
    ) {
        let mask = mask as u8;
        let bytes = snapshot_bytes(temporal_i == 1);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= mask;
        let err = Snapshot::decode(&bad).expect_err("flipped byte must fail");
        // Any typed kind is acceptable — flips in the header region can
        // legitimately surface as BadMagic / UnsupportedVersion / flags /
        // truncation — but it must never panic and never decode.
        let _ = err.kind();
    }

    /// Flips restricted to the payload region (past header + manifest)
    /// must be checksum mismatches attributed to a real section.
    #[test]
    fn payload_flip_is_a_section_checksum_mismatch(
        pos_frac in 0.0f64..1.0,
        mask in 1u32..256,
        temporal_i in 0usize..2,
    ) {
        let mask = mask as u8;
        let bytes = snapshot_bytes(temporal_i == 1);
        let entries = manifest(&bytes);
        let body_start = HEADER_LEN + entries.len() * MANIFEST_ENTRY_LEN;
        let span = bytes.len() - body_start - 1;
        let pos = body_start + ((span as f64) * pos_frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= mask;
        match Snapshot::decode(&bad).expect_err("payload flip must fail") {
            SnapshotError::ChecksumMismatch { section, .. } => {
                let (kind, ..) = entries
                    .iter()
                    .find(|&&(_, o, l)| pos >= o && pos < o + l)
                    .expect("payload byte belongs to a section");
                prop_assert_eq!(section, section_name(*kind));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }
}
