//! Randomized equivalence: an engine over a snapshot-reopened
//! `CompactIndex` must answer byte-identically to the in-memory layouts.
//!
//! This gates persistence exactly like sharding was gated: for random
//! timed stores and workloads, the snapshot round trip (encode → decode,
//! plus a real file write → open leg) must not change a single byte of any
//! response — matches including `f64` distances, plus the deterministic
//! stats counters — across all verify modes × temporal options ×
//! sequential / in-query-parallel / batch execution. A second property
//! pins the canonical-bytes guarantee: every layout of the same logical
//! index serializes to the identical file.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{
    AnyIndex, EngineBuilder, InvertedIndex, Parallelism, PostingSource, Query, SearchEngine,
    SearchOptions, ShardedIndex, TemporalConstraint, TimeInterval, VerifyMode,
};
use trajsearch_persist::Snapshot;
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 12;

/// Timed store: trajectory `i` departs at `10·i` with unit steps, matching
/// the core equivalence suites so temporal windows split the store.
fn timed_store(paths: Vec<Vec<Sym>>) -> TrajectoryStore {
    paths
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let t0 = 10.0 * i as f64;
            let times: Vec<f64> = (0..p.len()).map(|k| t0 + k as f64).collect();
            Trajectory::new(p, times)
        })
        .collect()
}

fn unified_queries(
    workload: &[(Vec<Sym>, f64)],
    opts: SearchOptions,
    available: bool,
) -> Vec<Query> {
    workload
        .iter()
        .map(|(q, tau)| {
            let mut b = Query::threshold(q.clone(), *tau)
                .verify(opts.verify)
                .temporal_filter(opts.temporal_filter)
                .temporal_postings(
                    opts.use_temporal_postings && available && opts.temporal.is_some(),
                );
            if let Some(c) = opts.temporal {
                b = b.temporal(c);
            }
            b.build().expect("workload queries are valid")
        })
        .collect()
}

fn check_outcomes<I: PostingSource + Sync>(
    reference: &SearchEngine<'_, Lev, AnyIndex>,
    engine: &SearchEngine<'_, Lev, I>,
    workload: &[(Vec<Sym>, f64)],
    opts: SearchOptions,
    label: &str,
) -> Result<(), TestCaseError> {
    let available = engine.index().has_temporal_postings();
    let queries = unified_queries(workload, opts, available);
    for ((q, tau), query) in workload.iter().zip(&queries) {
        let want = reference.run(query).expect("reference run");
        let got = engine.run(query).expect("run");
        prop_assert_eq!(
            &got.matches,
            &want.matches,
            "matches diverged ({}, q={:?}, tau={})",
            label,
            q,
            tau
        );
        prop_assert_eq!(got.stats.fallback, want.stats.fallback);
        prop_assert_eq!(got.stats.candidates, want.stats.candidates);
        prop_assert_eq!(got.stats.candidates_deduped, want.stats.candidates_deduped);
        prop_assert_eq!(got.stats.tsubseq_len, want.stats.tsubseq_len);
        prop_assert_eq!(got.stats.results, want.stats.results);

        let par = engine
            .run(
                &query
                    .clone()
                    .with_parallelism(Parallelism::InQuery(2))
                    .expect("threads >= 1"),
            )
            .expect("parallel run");
        prop_assert_eq!(
            &par.matches,
            &want.matches,
            "in-query parallel run diverged ({}, q={:?}, tau={})",
            label,
            q,
            tau
        );
    }
    let batch = engine
        .run_batch(&queries, BatchOptions::with_threads(2))
        .expect("batch admitted");
    for (i, (query, got)) in queries.iter().zip(&batch.responses).enumerate() {
        let want = reference.run(query).expect("reference run");
        prop_assert_eq!(
            &got.matches,
            &want.matches,
            "run_batch query {} diverged ({})",
            i,
            label
        );
    }
    Ok(())
}

/// Every verify mode × no-temporal / temporal with and without the TF
/// pre-filter and the by-departure postings path — the same grid the
/// sharding suite runs.
fn option_grid(constraint: TemporalConstraint) -> Vec<SearchOptions> {
    let mut grid = Vec::new();
    for verify in [VerifyMode::Trie, VerifyMode::Local, VerifyMode::Sw] {
        grid.push(SearchOptions {
            verify,
            ..Default::default()
        });
        for (tf, use_dep) in [(false, false), (true, false), (false, true), (true, true)] {
            grid.push(SearchOptions {
                verify,
                temporal: Some(constraint),
                temporal_filter: tf,
                use_temporal_postings: use_dep,
                ..Default::default()
            });
        }
    }
    grid
}

static FILE_SEQ: AtomicUsize = AtomicUsize::new(0);

fn unique_snapshot_path() -> std::path::PathBuf {
    let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "trajsearch_persist_equiv_{}_{seq}.snap",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine surface: the snapshot round trip changes no byte of any
    /// response, across the full option grid, in-memory and through a file.
    #[test]
    fn snapshot_reopened_engine_is_byte_identical(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            1..8,
        ),
        queries in proptest::collection::vec(
            (proptest::collection::vec(0u32..(ALPHABET as u32), 1..5), 1u32..4),
            1..4,
        ),
        win_start in 0.0f64..60.0,
        win_len in 1.0f64..40.0,
    ) {
        let store = timed_store(paths);
        let workload: Vec<(Vec<Sym>, f64)> = queries
            .into_iter()
            .map(|(q, tau_i)| (q, tau_i as f64))
            .collect();
        let constraint =
            TemporalConstraint::overlaps(TimeInterval::new(win_start, win_start + win_len));
        let reference = EngineBuilder::new(Lev, &store, ALPHABET)
            .temporal_postings(true)
            .build();

        let mut idx = InvertedIndex::build(&store, ALPHABET);
        idx.enable_temporal_postings();
        let bytes = Snapshot::encode(&store, &idx).expect("coherent inputs encode");
        let snap = Snapshot::decode(&bytes).expect("round trip decodes");
        let (reopened_store, compact) = snap.into_parts();
        prop_assert_eq!(reopened_store.len(), store.len());
        // The reopened index must be strictly smaller than what it replaces.
        prop_assert!(
            compact.size_bytes() <= idx.size_bytes(),
            "compact {} > inverted {}",
            compact.size_bytes(),
            idx.size_bytes()
        );
        let engine = EngineBuilder::new(Lev, &reopened_store, ALPHABET).build_with(compact);
        for opts in option_grid(constraint) {
            check_outcomes(&reference, &engine, &workload, opts, &format!("opts={opts:?}"))?;
        }

        // One leg through a real file: write → open must equal decode.
        let path = unique_snapshot_path();
        Snapshot::write(&path, &store, &idx).expect("write");
        let from_file = Snapshot::open(&path).expect("open");
        std::fs::remove_file(&path).ok();
        let (file_store, file_compact) = from_file.into_parts();
        let file_engine = EngineBuilder::new(Lev, &file_store, ALPHABET).build_with(file_compact);
        let opts = SearchOptions {
            temporal: Some(constraint),
            use_temporal_postings: true,
            ..Default::default()
        };
        check_outcomes(&reference, &file_engine, &workload, opts, "file round trip")?;
    }

    /// Canonical bytes: the same logical index serializes identically from
    /// every layout, with and without temporal postings, and a decoded
    /// snapshot re-encodes to a fixed point.
    #[test]
    fn snapshot_bytes_canonical_across_layouts(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..(ALPHABET as u32), 1..10),
            0..10,
        ),
        temporal_i in 0usize..2,
    ) {
        let temporal = temporal_i == 1;
        let store = timed_store(paths);
        let mut inv = InvertedIndex::build(&store, ALPHABET);
        if temporal {
            inv.enable_temporal_postings();
        }
        let reference = Snapshot::encode(&store, &inv).expect("encode inverted");
        for shards in [1, 2, 3, 7] {
            let mut sh = ShardedIndex::build_parallel(&store, ALPHABET, shards);
            if temporal {
                sh.enable_temporal_postings();
            }
            prop_assert_eq!(
                &Snapshot::encode(&store, &sh).expect("encode sharded"),
                &reference,
                "shards={} produced different bytes",
                shards
            );
        }
        let snap = Snapshot::decode(&reference).expect("decode");
        prop_assert_eq!(
            &Snapshot::encode(snap.store(), snap.index()).expect("re-encode"),
            &reference,
            "re-encoding a decoded snapshot moved the bytes"
        );
    }
}
