//! # trajsearch-persist — versioned on-disk snapshots of store + index
//!
//! Every process start used to pay "re-ingest + rebuild": materialize the
//! [`TrajectoryStore`](traj::TrajectoryStore), rebuild the inverted index,
//! re-sort the temporal orderings. This crate turns cold start into
//! "open + checksum": [`Snapshot::write`] serializes the store and **any**
//! [`PostingSource`](trajsearch_core::PostingSource) into a single
//! versioned, checksummed file, and [`Snapshot::open`] loads it back as a
//! [`CompactIndex`](trajsearch_core::CompactIndex) — delta+varint postings
//! in one contiguous arena, decoded in a single validated pass, with a
//! footprint well below the in-memory
//! [`InvertedIndex`](trajsearch_core::InvertedIndex).
//!
//! ## Format guarantees
//!
//! * **Versioned** — a 4-byte magic (`TSNP`), a format version and a flags
//!   word lead the file; future-version and unknown-flag files are rejected
//!   with typed errors, never misparsed.
//! * **Checksummed** — a manifest maps each section to its byte range and
//!   CRC32; the header+manifest carry their own CRC. Checksums are
//!   verified **before** any payload is parsed, and every structural count
//!   is bounded against the actual bytes, so truncated or bit-flipped
//!   files fail with a typed [`SnapshotError`] instead of panicking or
//!   allocating unboundedly.
//! * **Canonical** — postings are sorted into ascending `(id, j)` order at
//!   write time, so the same logical index produces identical bytes
//!   whether it was held as an `InvertedIndex` or a `ShardedIndex` at any
//!   shard count.
//! * **Equivalent** — an engine over the reopened index answers every
//!   query byte-identically to the original layouts; the proptest suites
//!   in `tests/` gate this exactly like sharding was gated.
//!
//! ## Quick example
//!
//! ```
//! use trajsearch_core::{EngineBuilder, InvertedIndex, Query};
//! use trajsearch_persist::Snapshot;
//! use traj::{Trajectory, TrajectoryStore};
//! use wed::models::Lev;
//!
//! let mut store = TrajectoryStore::new();
//! store.push(Trajectory::untimed(vec![0, 1, 2, 3]));
//! let index = InvertedIndex::build(&store, 8);
//!
//! let path = std::env::temp_dir().join("trajsearch_doc_example.snap");
//! Snapshot::write(&path, &store, &index)?;
//!
//! // Later (a different process): reopen without rebuilding anything.
//! let snapshot = Snapshot::open(&path)?;
//! let (store, compact) = snapshot.into_parts();
//! let engine = EngineBuilder::new(Lev, &store, 8).build_with(compact);
//! let hits = engine.run(&Query::threshold(vec![1, 2], 0.5).build().unwrap()).unwrap();
//! assert_eq!(hits.matches.len(), 1);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), trajsearch_persist::SnapshotError>(())
//! ```

mod error;
mod format;
mod snapshot;

pub use error::{SnapshotError, SnapshotErrorKind};
pub use format::crc32;
pub use snapshot::{
    Snapshot, SnapshotInfo, FLAG_TEMPORAL, FORMAT_VERSION, HEADER_LEN, MAGIC, MANIFEST_ENTRY_LEN,
};
