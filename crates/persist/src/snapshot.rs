//! The snapshot file format and its reader/writer.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"TSNP"
//! 4       2     format version (little-endian, currently 1)
//! 6       2     flags  (bit 0: temporal section present)
//! 8       4     section count
//! 12      4     header CRC32 (over bytes 0..12 ++ the manifest)
//! 16      24·k  manifest: per section {kind u32, offset u64, len u64, crc u32}
//! ...           section payloads (contiguous, in manifest order)
//! ```
//!
//! Sections of version 1 (`kind`):
//!
//! | kind | name     | payload                                              |
//! |------|----------|------------------------------------------------------|
//! | 1    | meta     | varints: num_trajectories, alphabet_size, postings   |
//! | 2    | paths    | per trajectory: varint len, then varint symbols      |
//! | 3    | times    | raw `f64` LE timestamps, trajectory-major            |
//! | 4    | spans    | raw `f64` LE departures ×n, then arrivals ×n         |
//! | 5    | postings | freqs `u32` LE ×a · offsets `u64` LE ×(a+1) · arena  |
//! | 6    | temporal | offsets `u64` LE ×(a+1) · arena (flag bit 0 only)    |
//!
//! The reader validates in strict order — magic, version, flags, manifest
//! bounds, header CRC, per-section CRCs — and only then parses payloads,
//! with every count bounded against the bytes that actually exist. A final
//! semantic pass proves the decoded postings are exactly the store's
//! occurrences (and the temporal arena a permutation of them), so even a
//! CRC-consistent file written by a buggy tool cannot serve wrong answers.

use crate::error::SnapshotError;
use crate::format::{crc32, read_f64, read_u16, read_u32, read_u64};
use std::path::Path;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::compact::{read_varint, write_varint};
use trajsearch_core::{CompactIndex, Posting, PostingSource};

/// First four bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"TSNP";
/// The format version this build writes and the newest it can read.
pub const FORMAT_VERSION: u16 = 1;
/// Flags bit 0: the temporal (by-departure) section is present.
pub const FLAG_TEMPORAL: u16 = 1 << 0;
/// Fixed header size in bytes (the manifest follows immediately).
pub const HEADER_LEN: usize = 16;
/// Size of one manifest entry in bytes.
pub const MANIFEST_ENTRY_LEN: usize = 24;

const SEC_META: u32 = 1;
const SEC_PATHS: u32 = 2;
const SEC_TIMES: u32 = 3;
const SEC_SPANS: u32 = 4;
const SEC_POSTINGS: u32 = 5;
const SEC_TEMPORAL: u32 = 6;
/// Backstop against absurd manifests before any allocation happens.
const MAX_SECTIONS: u32 = 64;

fn section_name(kind: u32) -> &'static str {
    match kind {
        SEC_META => "meta",
        SEC_PATHS => "paths",
        SEC_TIMES => "times",
        SEC_SPANS => "spans",
        SEC_POSTINGS => "postings",
        SEC_TEMPORAL => "temporal",
        _ => "unknown",
    }
}

/// What [`Snapshot::write`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Total file size in bytes.
    pub file_bytes: usize,
    /// Number of sections in the manifest.
    pub sections: usize,
    /// Whether the by-departure orderings were included.
    pub temporal: bool,
}

/// A decoded snapshot: the trajectory store plus the compact index, ready
/// for [`EngineBuilder::build_with`](trajsearch_core::EngineBuilder::build_with).
#[derive(Debug, Clone)]
pub struct Snapshot {
    store: TrajectoryStore,
    index: CompactIndex,
    file_bytes: usize,
}

impl Snapshot {
    /// Serializes `store` + `index` and writes the file atomically (a
    /// temporary sibling is written first, then renamed over `path`), so a
    /// crash mid-write can never leave a torn snapshot under the real name.
    ///
    /// `index` may be any [`PostingSource`] — single-list, sharded at any
    /// count, or an already-compact index; canonicalization makes the bytes
    /// identical in every case.
    pub fn write<I: PostingSource>(
        path: &Path,
        store: &TrajectoryStore,
        index: &I,
    ) -> Result<SnapshotInfo, SnapshotError> {
        let bytes = Self::encode(store, index)?;
        let info = SnapshotInfo {
            file_bytes: bytes.len(),
            sections: if index.has_temporal_postings() { 6 } else { 5 },
            temporal: index.has_temporal_postings(),
        };
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(info)
    }

    /// The in-memory half of [`Snapshot::write`]: the exact file bytes.
    ///
    /// Fails with [`SnapshotError::StoreIndexMismatch`] if `index` does not
    /// describe `store`'s trajectories (count, spans, or total postings
    /// disagree, or a path symbol is outside the index alphabet).
    pub fn encode<I: PostingSource>(
        store: &TrajectoryStore,
        index: &I,
    ) -> Result<Vec<u8>, SnapshotError> {
        check_encode_coherence(store, index)?;
        let compact = CompactIndex::from_source(index);

        let n = store.len();
        let alphabet = compact.alphabet_size();
        let total = compact.total_postings();

        let mut meta = Vec::new();
        write_varint(&mut meta, n as u64);
        write_varint(&mut meta, alphabet as u64);
        write_varint(&mut meta, total as u64);

        let mut paths = Vec::new();
        let mut times = Vec::with_capacity(total * 8);
        for (_, t) in store.iter() {
            write_varint(&mut paths, t.path().len() as u64);
            for &sym in t.path() {
                write_varint(&mut paths, u64::from(sym));
            }
            for &time in t.times() {
                times.extend_from_slice(&time.to_bits().to_le_bytes());
            }
        }

        let mut spans = Vec::with_capacity(n * 16);
        for &dep in compact.departures() {
            spans.extend_from_slice(&dep.to_bits().to_le_bytes());
        }
        for &arr in compact.arrivals() {
            spans.extend_from_slice(&arr.to_bits().to_le_bytes());
        }

        let mut postings = Vec::new();
        for &f in compact.freqs() {
            postings.extend_from_slice(&f.to_le_bytes());
        }
        for &off in compact.offsets() {
            postings.extend_from_slice(&off.to_le_bytes());
        }
        postings.extend_from_slice(compact.arena());

        let mut sections: Vec<(u32, Vec<u8>)> = vec![
            (SEC_META, meta),
            (SEC_PATHS, paths),
            (SEC_TIMES, times),
            (SEC_SPANS, spans),
            (SEC_POSTINGS, postings),
        ];
        let mut flags = 0u16;
        if let Some((t_offsets, t_arena)) = compact.temporal_parts() {
            let mut temporal = Vec::with_capacity(t_offsets.len() * 8 + t_arena.len());
            for &off in t_offsets {
                temporal.extend_from_slice(&off.to_le_bytes());
            }
            temporal.extend_from_slice(t_arena);
            sections.push((SEC_TEMPORAL, temporal));
            flags |= FLAG_TEMPORAL;
        }

        Ok(assemble(flags, &sections))
    }

    /// Reads and [`decode`](Snapshot::decode)s the file at `path`.
    pub fn open(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Snapshot::decode(&bytes)
    }

    /// Validates and decodes snapshot bytes. Validation runs in strict
    /// order — magic, version, flags, manifest bounds, header CRC,
    /// per-section CRCs, bounded parses, then the semantic
    /// postings-vs-store pass; any defect yields a typed
    /// [`SnapshotError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let (store, index) = decode_validated(bytes)?;
        Ok(Snapshot {
            store,
            index,
            file_bytes: bytes.len(),
        })
    }

    /// The decoded trajectory store.
    pub fn store(&self) -> &TrajectoryStore {
        &self.store
    }

    /// The decoded compact index.
    pub fn index(&self) -> &CompactIndex {
        &self.index
    }

    /// Size of the file (or byte buffer) this snapshot was decoded from.
    pub fn file_bytes(&self) -> usize {
        self.file_bytes
    }

    /// Consumes the snapshot into `(store, index)` — the pair
    /// [`EngineBuilder::build_with`](trajsearch_core::EngineBuilder::build_with)
    /// wants.
    pub fn into_parts(self) -> (TrajectoryStore, CompactIndex) {
        (self.store, self.index)
    }
}

fn check_encode_coherence<I: PostingSource>(
    store: &TrajectoryStore,
    index: &I,
) -> Result<(), SnapshotError> {
    let mismatch = |detail: String| Err(SnapshotError::StoreIndexMismatch { detail });
    if index.num_trajectories() != store.len() {
        return mismatch(format!(
            "index covers {} trajectories, store holds {}",
            index.num_trajectories(),
            store.len()
        ));
    }
    let alphabet = index.alphabet_size();
    let mut total = 0usize;
    for (id, t) in store.iter() {
        total += t.path().len();
        if let Some(&sym) = t.path().iter().find(|&&s| s as usize >= alphabet) {
            return mismatch(format!(
                "trajectory {id} uses symbol {sym}, outside the index alphabet ({alphabet})"
            ));
        }
        let (dep, arr) = index.span(id);
        if dep.to_bits() != t.departure().to_bits() || arr.to_bits() != t.arrival().to_bits() {
            return mismatch(format!(
                "span of trajectory {id}: index says ({dep}, {arr}), store says ({}, {})",
                t.departure(),
                t.arrival()
            ));
        }
    }
    if total != index.total_postings() {
        return mismatch(format!(
            "store holds {total} path positions, index holds {} postings",
            index.total_postings()
        ));
    }
    Ok(())
}

fn assemble(flags: u16, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let manifest_len = sections.len() * MANIFEST_ENTRY_LEN;
    let mut offset = (HEADER_LEN + manifest_len) as u64;

    let mut manifest = Vec::with_capacity(manifest_len);
    for (kind, payload) in sections {
        manifest.extend_from_slice(&kind.to_le_bytes());
        manifest.extend_from_slice(&offset.to_le_bytes());
        manifest.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        manifest.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }

    let mut head = Vec::with_capacity(12 + manifest.len());
    head.extend_from_slice(&MAGIC);
    head.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    head.extend_from_slice(&flags.to_le_bytes());
    head.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    head.extend_from_slice(&manifest);
    let header_crc = crc32(&head);

    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(&head[..12]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(&manifest);
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    out
}

struct SectionRef<'a> {
    payload: &'a [u8],
}

fn decode_validated(bytes: &[u8]) -> Result<(TrajectoryStore, CompactIndex), SnapshotError> {
    let have = bytes.len() as u64;
    let truncated =
        |what: &'static str, needed: u64| SnapshotError::Truncated { what, needed, have };
    let corrupt =
        |section: &'static str, detail: String| SnapshotError::Corrupt { section, detail };

    // 1. Header: magic, version, flags — checked before anything else so a
    //    foreign or future file is identified as such, not as "corrupt".
    if bytes.len() < HEADER_LEN {
        return Err(truncated("header", HEADER_LEN as u64));
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic {
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    let version = read_u16(bytes, 4).expect("header length checked");
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = read_u16(bytes, 6).expect("header length checked");
    if flags & !FLAG_TEMPORAL != 0 {
        return Err(SnapshotError::UnknownFlags { flags });
    }
    let section_count = read_u32(bytes, 8).expect("header length checked");
    if section_count > MAX_SECTIONS {
        return Err(corrupt(
            "header",
            format!("implausible section count {section_count}"),
        ));
    }
    let manifest_len = section_count as usize * MANIFEST_ENTRY_LEN;
    let body_start = HEADER_LEN + manifest_len;
    if bytes.len() < body_start {
        return Err(truncated("manifest", body_start as u64));
    }

    // 2. Header + manifest CRC, before trusting any offset in it.
    let stored_crc = read_u32(bytes, 12).expect("header length checked");
    let mut head = Vec::with_capacity(12 + manifest_len);
    head.extend_from_slice(&bytes[..12]);
    head.extend_from_slice(&bytes[HEADER_LEN..body_start]);
    let computed_crc = crc32(&head);
    if stored_crc != computed_crc {
        return Err(SnapshotError::ChecksumMismatch {
            section: "header",
            stored: stored_crc,
            computed: computed_crc,
        });
    }

    // 3. Manifest entries: known kinds, unique, in-bounds ranges.
    let mut sections: [Option<SectionRef<'_>>; 6] = [const { None }; 6];
    for i in 0..section_count as usize {
        let base = HEADER_LEN + i * MANIFEST_ENTRY_LEN;
        let kind = read_u32(bytes, base).expect("manifest length checked");
        let offset = read_u64(bytes, base + 4).expect("manifest length checked");
        let len = read_u64(bytes, base + 12).expect("manifest length checked");
        let crc = read_u32(bytes, base + 20).expect("manifest length checked");
        if !(SEC_META..=SEC_TEMPORAL).contains(&kind) {
            return Err(corrupt("manifest", format!("unknown section kind {kind}")));
        }
        let name = section_name(kind);
        let slot = &mut sections[kind as usize - 1];
        if slot.is_some() {
            return Err(corrupt("manifest", format!("duplicate {name} section")));
        }
        if offset < body_start as u64 {
            return Err(corrupt(
                "manifest",
                format!("{name} section overlaps the header"),
            ));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt("manifest", format!("{name} section range overflows")))?;
        if end > have {
            return Err(truncated(name, end));
        }
        let payload = &bytes[offset as usize..end as usize];
        // 4. Section CRC before its payload is parsed.
        let computed = crc32(payload);
        if crc != computed {
            return Err(SnapshotError::ChecksumMismatch {
                section: name,
                stored: crc,
                computed,
            });
        }
        *slot = Some(SectionRef { payload });
    }
    let want_temporal = flags & FLAG_TEMPORAL != 0;
    let required: &[u32] = &[SEC_META, SEC_PATHS, SEC_TIMES, SEC_SPANS, SEC_POSTINGS];
    for &kind in required {
        if sections[kind as usize - 1].is_none() {
            return Err(corrupt(
                "manifest",
                format!("missing {} section", section_name(kind)),
            ));
        }
    }
    if want_temporal != sections[SEC_TEMPORAL as usize - 1].is_some() {
        return Err(corrupt(
            "manifest",
            "temporal flag and temporal section disagree".into(),
        ));
    }
    let section = |kind: u32| {
        sections[kind as usize - 1]
            .as_ref()
            .map(|s| s.payload)
            .expect("presence checked above")
    };

    // 5. Meta, with every count bounded by real bytes before allocation.
    let meta = section(SEC_META);
    let mut pos = 0usize;
    let mut meta_varint = |what: &'static str| {
        read_varint(meta, &mut pos).ok_or_else(|| corrupt("meta", format!("{what} truncated")))
    };
    let n = meta_varint("trajectory count")?;
    let alphabet = meta_varint("alphabet size")?;
    let total = meta_varint("total postings")?;
    if pos != meta.len() {
        return Err(corrupt("meta", "trailing bytes".into()));
    }
    if n > u64::from(u32::MAX) {
        return Err(corrupt(
            "meta",
            format!("{n} trajectories overflow u32 ids"),
        ));
    }
    if alphabet > u64::from(u32::MAX) {
        return Err(corrupt(
            "meta",
            format!("alphabet {alphabet} overflows u32"),
        ));
    }
    let paths_sec = section(SEC_PATHS);
    let times_sec = section(SEC_TIMES);
    let spans_sec = section(SEC_SPANS);
    let postings_sec = section(SEC_POSTINGS);
    // Each trajectory needs >= 2 bytes of path encoding (length + one
    // symbol) and 16 span bytes; each posting one time stamp.
    if n * 2 > paths_sec.len() as u64 || n * 16 != spans_sec.len() as u64 {
        return Err(corrupt(
            "meta",
            format!("{n} trajectories do not fit the paths/spans sections"),
        ));
    }
    let time_bytes = total.checked_mul(8).ok_or_else(|| {
        corrupt(
            "meta",
            format!("{total} postings overflow the times section size"),
        )
    })?;
    if time_bytes != times_sec.len() as u64 {
        return Err(corrupt(
            "meta",
            format!(
                "{total} postings need {time_bytes} time bytes, section has {}",
                times_sec.len()
            ),
        ));
    }
    let tables_len = (alphabet * 4)
        .checked_add((alphabet + 1) * 8)
        .filter(|&need| need <= postings_sec.len() as u64)
        .ok_or_else(|| {
            corrupt(
                "meta",
                format!("alphabet {alphabet} does not fit the postings section"),
            )
        })?;
    let (n, alphabet, total) = (n as usize, alphabet as usize, total as usize);

    // 6. Store sections.
    let mut store = TrajectoryStore::new();
    let mut path_pos = 0usize;
    let mut time_pos = 0usize;
    for id in 0..n {
        let len = read_varint(paths_sec, &mut path_pos)
            .ok_or_else(|| corrupt("paths", format!("trajectory {id} length truncated")))?;
        if len == 0 {
            return Err(corrupt("paths", format!("trajectory {id} is empty")));
        }
        if len > (paths_sec.len() - path_pos) as u64 {
            return Err(corrupt(
                "paths",
                format!("trajectory {id} claims {len} symbols, section has fewer bytes"),
            ));
        }
        let mut path = Vec::with_capacity(len as usize);
        for k in 0..len {
            let sym = read_varint(paths_sec, &mut path_pos).ok_or_else(|| {
                corrupt("paths", format!("trajectory {id} truncated at symbol {k}"))
            })?;
            if sym >= alphabet as u64 {
                return Err(corrupt(
                    "paths",
                    format!("trajectory {id} symbol {sym} outside alphabet {alphabet}"),
                ));
            }
            path.push(sym as u32);
        }
        let mut times = Vec::with_capacity(len as usize);
        let mut last = f64::NEG_INFINITY;
        for k in 0..len {
            let t = read_f64(times_sec, time_pos)
                .ok_or_else(|| corrupt("times", format!("trajectory {id} truncated at {k}")))?;
            time_pos += 8;
            if t.is_nan() || t < last {
                return Err(corrupt(
                    "times",
                    format!("trajectory {id} timestamps not non-decreasing at {k}"),
                ));
            }
            last = t;
            times.push(t);
        }
        store.push(Trajectory::new(path, times));
    }
    if path_pos != paths_sec.len() {
        return Err(corrupt("paths", "trailing bytes".into()));
    }

    // 7. Spans must agree bitwise with the store's own times.
    let mut departures = Vec::with_capacity(n);
    let mut arrivals = Vec::with_capacity(n);
    for id in 0..n {
        let dep = read_f64(spans_sec, id * 8).expect("length checked");
        let arr = read_f64(spans_sec, (n + id) * 8).expect("length checked");
        let t = store.get(id as u32);
        if dep.to_bits() != t.departure().to_bits() || arr.to_bits() != t.arrival().to_bits() {
            return Err(corrupt(
                "spans",
                format!("span of trajectory {id} disagrees with the times section"),
            ));
        }
        departures.push(dep);
        arrivals.push(arr);
    }

    // 8. Postings tables + arena, structurally validated by CompactIndex.
    let mut freqs = Vec::with_capacity(alphabet);
    for q in 0..alphabet {
        freqs.push(read_u32(postings_sec, q * 4).expect("length checked"));
    }
    let mut offsets = Vec::with_capacity(alphabet + 1);
    for q in 0..=alphabet {
        offsets.push(read_u64(postings_sec, alphabet * 4 + q * 8).expect("length checked"));
    }
    if freqs.iter().map(|&f| f as u64).sum::<u64>() != total as u64 {
        return Err(corrupt(
            "postings",
            "frequency table does not sum to the meta postings count".into(),
        ));
    }
    let arena = postings_sec[tables_len as usize..].to_vec();
    let temporal = if want_temporal {
        let temporal_sec = section(SEC_TEMPORAL);
        let offsets_len = (alphabet + 1) * 8;
        if temporal_sec.len() < offsets_len {
            return Err(corrupt(
                "temporal",
                "section shorter than its offset table".into(),
            ));
        }
        let mut t_offsets = Vec::with_capacity(alphabet + 1);
        for q in 0..=alphabet {
            t_offsets.push(read_u64(temporal_sec, q * 8).expect("length checked"));
        }
        Some((t_offsets, temporal_sec[offsets_len..].to_vec()))
    } else {
        None
    };
    let index = CompactIndex::from_parts(freqs, offsets, arena, departures, arrivals, temporal)
        .map_err(|detail| {
            let section = if detail.starts_with("temporal") {
                "temporal"
            } else {
                "postings"
            };
            corrupt(section, detail)
        })?;

    // 9. Semantic pass: the index must describe exactly the store's symbol
    //    occurrences — a checksum cannot catch a coherent-but-wrong writer.
    let mut main_records: Vec<Posting> = Vec::new();
    for q in 0..alphabet as u32 {
        main_records.clear();
        let mut prev: Option<Posting> = None;
        for (id, j) in index.postings(q) {
            if prev.is_some_and(|p| p >= (id, j)) {
                return Err(corrupt(
                    "postings",
                    format!("list of symbol {q} is not strictly (id, j)-sorted"),
                ));
            }
            prev = Some((id, j));
            let path = store.get(id).path();
            if j as usize >= path.len() || path[j as usize] != q {
                return Err(corrupt(
                    "postings",
                    format!("posting ({id}, {j}) of symbol {q} does not match the store"),
                ));
            }
            main_records.push((id, j));
        }
        if index.has_temporal_postings() {
            let mut temporal: Vec<Posting> = index
                .postings_departing_by(q, f64::INFINITY)
                .map(|(_, p)| p)
                .collect();
            temporal.sort_unstable();
            if temporal != main_records {
                return Err(corrupt(
                    "temporal",
                    format!("by-departure list of symbol {q} is not a permutation of L_q"),
                ));
            }
        }
    }
    // `from_parts` proved per-list counts match `freqs`, and freqs sum to
    // `total`, which matched the times section — so postings ≡ store
    // occurrences is now fully established.

    Ok((store, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SnapshotErrorKind;
    use trajsearch_core::{InvertedIndex, ShardedIndex};

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![0, 1, 2], vec![10.0, 11.0, 12.0]));
        s.push(Trajectory::new(vec![2, 1, 2], vec![5.0, 6.0, 7.0]));
        s.push(Trajectory::new(vec![3, 0], vec![20.0, 21.0]));
        s.push(Trajectory::new(vec![1, 1, 1, 3], vec![1.0, 2.0, 3.0, 4.0]));
        s
    }

    fn encode_with_temporal() -> (TrajectoryStore, Vec<u8>) {
        let s = store();
        let mut idx = InvertedIndex::build(&s, 5);
        idx.enable_temporal_postings();
        let bytes = Snapshot::encode(&s, &idx).unwrap();
        (s, bytes)
    }

    #[test]
    fn round_trip_preserves_store_and_index() {
        let (s, bytes) = encode_with_temporal();
        let snap = Snapshot::decode(&bytes).unwrap();
        assert_eq!(snap.file_bytes(), bytes.len());
        assert_eq!(snap.store().len(), s.len());
        for (id, t) in s.iter() {
            assert_eq!(snap.store().get(id).path(), t.path());
            assert_eq!(snap.store().get(id).times(), t.times());
        }
        let mut reference = InvertedIndex::build(&s, 5);
        reference.enable_temporal_postings();
        let idx = snap.index();
        assert!(idx.has_temporal_postings());
        assert_eq!(idx.total_postings(), reference.total_postings());
        for q in 0..5u32 {
            let got: Vec<Posting> = idx.postings(q).collect();
            assert_eq!(got, reference.postings(q), "q={q}");
            for t_max in [0.0, 6.5, 15.0, 1e9] {
                let got: Vec<(f64, Posting)> = idx.postings_departing_by(q, t_max).collect();
                assert_eq!(got, reference.postings_departing_by(q, t_max), "q={q}");
            }
        }
    }

    #[test]
    fn bytes_are_canonical_across_layouts() {
        let s = store();
        let mut inv = InvertedIndex::build(&s, 5);
        inv.enable_temporal_postings();
        let reference = Snapshot::encode(&s, &inv).unwrap();
        for shards in [1, 2, 3, 7] {
            let mut sh = ShardedIndex::build_parallel(&s, 5, shards);
            sh.enable_temporal_postings();
            assert_eq!(
                Snapshot::encode(&s, &sh).unwrap(),
                reference,
                "shards={shards}"
            );
        }
        // And re-encoding a decoded snapshot is a fixed point.
        let snap = Snapshot::decode(&reference).unwrap();
        assert_eq!(
            Snapshot::encode(snap.store(), snap.index()).unwrap(),
            reference
        );
    }

    #[test]
    fn write_open_round_trip_is_atomic_and_faithful() {
        let s = store();
        let idx = InvertedIndex::build(&s, 5);
        let path = std::env::temp_dir().join("trajsearch_persist_unit.snap");
        let info = Snapshot::write(&path, &s, &idx).unwrap();
        assert!(!info.temporal);
        assert_eq!(info.sections, 5);
        assert_eq!(
            info.file_bytes,
            std::fs::metadata(&path).unwrap().len() as usize
        );
        let snap = Snapshot::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!snap.index().has_temporal_postings());
        assert_eq!(snap.index().total_postings(), idx.total_postings());
    }

    #[test]
    fn empty_store_round_trips() {
        let s = TrajectoryStore::new();
        let idx = InvertedIndex::build(&s, 3);
        let bytes = Snapshot::encode(&s, &idx).unwrap();
        let snap = Snapshot::decode(&bytes).unwrap();
        assert_eq!(snap.store().len(), 0);
        assert_eq!(snap.index().alphabet_size(), 3);
        assert_eq!(snap.index().total_postings(), 0);
    }

    #[test]
    fn open_missing_file_is_io() {
        let err = Snapshot::open(Path::new("/nonexistent/definitely.snap")).unwrap_err();
        assert_eq!(err.kind(), SnapshotErrorKind::Io);
    }

    #[test]
    fn wrong_magic_and_future_version_are_typed() {
        let (_, bytes) = encode_with_temporal();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(
            Snapshot::decode(&wrong).unwrap_err().kind(),
            SnapshotErrorKind::BadMagic
        );
        let mut future = bytes.clone();
        future[4] = 99; // version LE low byte
        match Snapshot::decode(&future).unwrap_err() {
            SnapshotError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        let mut flags = bytes.clone();
        flags[6] |= 0x80;
        assert_eq!(
            Snapshot::decode(&flags).unwrap_err().kind(),
            SnapshotErrorKind::UnknownFlags
        );
        assert_eq!(
            Snapshot::decode(&[]).unwrap_err().kind(),
            SnapshotErrorKind::Truncated
        );
        assert_eq!(
            Snapshot::decode(&bytes[..HEADER_LEN - 1])
                .unwrap_err()
                .kind(),
            SnapshotErrorKind::Truncated
        );
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let (_, bytes) = encode_with_temporal();
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let err = Snapshot::decode(&bad).unwrap_err();
        assert_eq!(err.kind(), SnapshotErrorKind::ChecksumMismatch);
    }

    #[test]
    fn truncation_is_typed() {
        let (_, bytes) = encode_with_temporal();
        for cut in [bytes.len() - 1, bytes.len() / 2, HEADER_LEN + 3] {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    SnapshotErrorKind::Truncated | SnapshotErrorKind::ChecksumMismatch
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn mismatched_store_and_index_refuse_to_encode() {
        let s = store();
        let idx = InvertedIndex::build(&s, 5);
        let mut bigger = store();
        bigger.push(Trajectory::untimed(vec![1, 2]));
        assert_eq!(
            Snapshot::encode(&bigger, &idx).unwrap_err().kind(),
            SnapshotErrorKind::StoreIndexMismatch
        );
        // Same counts, different trajectories: spans disagree.
        let mut other = TrajectoryStore::new();
        other.push(Trajectory::new(vec![0, 1, 2], vec![0.0, 1.0, 2.0]));
        other.push(Trajectory::new(vec![2, 1, 2], vec![5.0, 6.0, 7.0]));
        other.push(Trajectory::new(vec![3, 0], vec![20.0, 21.0]));
        other.push(Trajectory::new(vec![1, 1, 1, 3], vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(
            Snapshot::encode(&other, &idx).unwrap_err().kind(),
            SnapshotErrorKind::StoreIndexMismatch
        );
    }

    #[test]
    fn crc_patched_semantic_corruption_is_caught() {
        // Re-point one posting at the wrong symbol and fix up every CRC so
        // only the semantic pass can catch it.
        let (_, bytes) = encode_with_temporal();
        let snap = Snapshot::decode(&bytes).unwrap();
        let c = snap.index();
        // Swap the freq counts of two symbols with different frequencies;
        // offsets stay valid prefix sums, so only record counting notices.
        let mut freqs = c.freqs().to_vec();
        freqs.swap(0, 1);
        let err = CompactIndex::from_parts(
            freqs,
            c.offsets().to_vec(),
            c.arena().to_vec(),
            c.departures().to_vec(),
            c.arrivals().to_vec(),
            None,
        );
        assert!(err.is_err());
    }
}
