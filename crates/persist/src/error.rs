//! Typed snapshot failures: every way a file can be unusable has its own
//! variant, and nothing in the decode path panics.

use std::fmt;

/// Why a snapshot could not be written or opened.
///
/// The decode path guarantees **typed failure**: a truncated, bit-flipped,
/// future-version or otherwise malformed file always surfaces as one of
/// these variants — never a panic, never a silently wrong index. Match on
/// [`kind`](SnapshotError::kind) when only the class matters (e.g. "retry
/// on `Io`, refuse on anything else").
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure while reading or writing the snapshot file.
    Io(std::io::Error),
    /// The file does not start with the `TSNP` magic — not a snapshot.
    BadMagic { found: [u8; 4] },
    /// Written by a newer format version than this reader supports.
    UnsupportedVersion { found: u16, supported: u16 },
    /// The flags word carries bits this reader does not understand; the
    /// file may rely on semantics we would silently ignore, so refuse it.
    UnknownFlags { flags: u16 },
    /// The file ends before the named structure is complete.
    Truncated {
        what: &'static str,
        /// Bytes the structure needs.
        needed: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// Stored and recomputed CRC32 disagree — the bytes were corrupted.
    ChecksumMismatch {
        section: &'static str,
        stored: u32,
        computed: u32,
    },
    /// The bytes checksum correctly but violate a structural or semantic
    /// invariant of the named section (a writer bug or a deliberate
    /// mutation that patched the CRCs).
    Corrupt {
        section: &'static str,
        detail: String,
    },
    /// `Snapshot::write`/`encode` was handed a store and an index that do
    /// not describe the same trajectories.
    StoreIndexMismatch { detail: String },
}

/// Discriminant-only view of [`SnapshotError`], for tests and callers that
/// classify without destructuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotErrorKind {
    Io,
    BadMagic,
    UnsupportedVersion,
    UnknownFlags,
    Truncated,
    ChecksumMismatch,
    Corrupt,
    StoreIndexMismatch,
}

impl SnapshotError {
    /// The variant, without its payload.
    pub fn kind(&self) -> SnapshotErrorKind {
        match self {
            SnapshotError::Io(_) => SnapshotErrorKind::Io,
            SnapshotError::BadMagic { .. } => SnapshotErrorKind::BadMagic,
            SnapshotError::UnsupportedVersion { .. } => SnapshotErrorKind::UnsupportedVersion,
            SnapshotError::UnknownFlags { .. } => SnapshotErrorKind::UnknownFlags,
            SnapshotError::Truncated { .. } => SnapshotErrorKind::Truncated,
            SnapshotError::ChecksumMismatch { .. } => SnapshotErrorKind::ChecksumMismatch,
            SnapshotError::Corrupt { .. } => SnapshotErrorKind::Corrupt,
            SnapshotError::StoreIndexMismatch { .. } => SnapshotErrorKind::StoreIndexMismatch,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot: magic {found:?} != b\"TSNP\"")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            SnapshotError::UnknownFlags { flags } => {
                write!(f, "snapshot carries unknown flag bits {flags:#06x}")
            }
            SnapshotError::Truncated { what, needed, have } => {
                write!(
                    f,
                    "snapshot truncated: {what} needs {needed} bytes, have {have}"
                )
            }
            SnapshotError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Corrupt { section, detail } => {
                write!(f, "corrupt {section} section: {detail}")
            }
            SnapshotError::StoreIndexMismatch { detail } => {
                write!(f, "store and index disagree: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
