//! Byte-level primitives for the snapshot format: CRC32 and bounds-checked
//! little-endian readers. Varints come from
//! [`trajsearch_core::compact`](trajsearch_core::compact) so the arena
//! encoding is shared with the in-memory `CompactIndex`.

/// CRC-32 (IEEE 802.3, reflected, `0xEDB88320`) — the same polynomial as
/// gzip/zlib, computed from a compile-time table. No dependency needed.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

// Bounds-checked little-endian readers: `None` on truncation, never panic.

pub(crate) fn read_u16(buf: &[u8], pos: usize) -> Option<u16> {
    Some(u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?))
}

pub(crate) fn read_u32(buf: &[u8], pos: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?))
}

pub(crate) fn read_u64(buf: &[u8], pos: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(pos..pos + 8)?.try_into().ok()?))
}

pub(crate) fn read_f64(buf: &[u8], pos: usize) -> Option<f64> {
    Some(f64::from_bits(read_u64(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn readers_refuse_truncated_input() {
        let buf = [1u8, 2, 3];
        assert_eq!(read_u16(&buf, 0), Some(0x0201));
        assert_eq!(read_u16(&buf, 2), None);
        assert_eq!(read_u32(&buf, 0), None);
        assert_eq!(read_u64(&buf, 0), None);
        assert_eq!(read_f64(&buf, 0), None);
    }
}
