//! DISON adaptation (§6.1).
//!
//! DISON (Yuan & Li) generates candidates by scanning the postings lists of
//! a query *prefix*. Adapted to WED subtrajectory search as the paper
//! describes: `Q'` is the shortest prefix of `Q` with `Σ c(q) ≥ τ` — a valid
//! τ-subsequence (so Theorem 1 and Lemma 1 apply), but not optimized for
//! candidate count like MinCand. Verification reuses the engine's layer, so
//! the baseline comes in `DISON-SW` and `DISON-BT` flavors.

use std::time::Instant;
use traj::TrajectoryStore;
use trajsearch_core::results::MatchResult;
use trajsearch_core::verify::{verify_candidates, Candidate, VerifyMode};
use trajsearch_core::{InvertedIndex, SearchStats};
use wed::{Sym, WedInstance};

/// DISON-style prefix-filtered search.
pub struct Dison<'a, M: WedInstance> {
    model: M,
    store: &'a TrajectoryStore,
    index: InvertedIndex,
    verify: VerifyMode,
}

impl<'a, M: WedInstance> Dison<'a, M> {
    pub fn new(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
        verify: VerifyMode,
    ) -> Self {
        let index = InvertedIndex::build(store, alphabet_size);
        Dison {
            model,
            store,
            index,
            verify,
        }
    }

    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The candidate-generating prefix: positions `0..i` where `i` is
    /// minimal with `Σ c(q) ≥ τ`; `None` if even the whole query is too
    /// cheap (filtering infeasible).
    fn prefix(&self, q: &[Sym], tau: f64) -> Option<usize> {
        let mut acc = 0.0;
        for (i, &sym) in q.iter().enumerate() {
            acc += self.model.lower_cost(sym);
            if acc >= tau {
                return Some(i + 1);
            }
        }
        None
    }

    pub fn search(&self, q: &[Sym], tau: f64) -> (Vec<MatchResult>, SearchStats) {
        assert!(tau > 0.0 && !q.is_empty());
        let mut stats = SearchStats::default();
        let t0 = Instant::now();
        let prefix_len = self.prefix(q, tau);
        stats.mincand_time = t0.elapsed();

        let Some(prefix_len) = prefix_len else {
            // Same exactness fallback (and stats contract) as the engine.
            let matches = trajsearch_core::exact_fallback_scan(
                &self.model,
                self.store,
                q,
                tau,
                None,
                false,
                &mut stats,
            );
            return (matches, stats);
        };
        stats.tsubseq_len = prefix_len;

        let t1 = Instant::now();
        let mut candidates = Vec::new();
        for (pos, &sym) in q.iter().enumerate().take(prefix_len) {
            for b in self.model.neighbors(sym) {
                for &(id, j) in self.index.postings(b) {
                    candidates.push(Candidate {
                        id,
                        j,
                        iq: pos as u32,
                    });
                }
            }
        }
        stats.lookup_time = t1.elapsed();

        let t2 = Instant::now();
        let matches = verify_candidates(
            &self.model,
            self.store,
            |id| self.index.span(id),
            q,
            tau,
            &candidates,
            self.verify,
            None,
            false,
            &mut stats,
        );
        stats.verify_time = t2.elapsed();
        (matches, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use traj::Trajectory;
    use wed::models::Lev;

    fn random_store(rng: &mut ChaCha8Rng, n: usize) -> TrajectoryStore {
        (0..n)
            .map(|_| {
                let len = rng.gen_range(1..15);
                Trajectory::untimed((0..len).map(|_| rng.gen_range(0..8)).collect())
            })
            .collect()
    }

    #[test]
    fn both_verify_modes_equal_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let store = random_store(&mut rng, 15);
        for mode in [VerifyMode::Sw, VerifyMode::Trie] {
            let dison = Dison::new(&Lev, &store, 8, mode);
            for _ in 0..8 {
                let qlen = rng.gen_range(1..5);
                let q: Vec<Sym> = (0..qlen).map(|_| rng.gen_range(0..8)).collect();
                let tau = rng.gen_range(0.5..(qlen as f64 + 0.5));
                let (got, _) = dison.search(&q, tau);
                let want = naive_search(&Lev, &store, &q, tau);
                assert_eq!(got.len(), want.len(), "mode={mode:?} q={q:?} tau={tau}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!((g.id, g.start, g.end), (w.id, w.start, w.end));
                }
            }
        }
    }

    #[test]
    fn prefix_is_shortest_satisfying() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let store = random_store(&mut rng, 5);
        let dison = Dison::new(&Lev, &store, 8, VerifyMode::Trie);
        // Lev: c(q) = 1 per symbol, so prefix length = ceil(tau).
        assert_eq!(dison.prefix(&[1, 2, 3, 4], 2.0), Some(2));
        assert_eq!(dison.prefix(&[1, 2, 3, 4], 0.5), Some(1));
        assert_eq!(dison.prefix(&[1, 2], 3.0), None);
    }

    #[test]
    fn infeasible_falls_back_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let store = random_store(&mut rng, 8);
        let dison = Dison::new(&Lev, &store, 8, VerifyMode::Trie);
        let q: Vec<Sym> = vec![1, 2];
        let tau = 5.0; // c(Q) = 2 < tau
        let (got, stats) = dison.search(&q, tau);
        assert!(stats.fallback);
        let want = naive_search(&Lev, &store, &q, tau);
        assert_eq!(got.len(), want.len());
        // The shared fallback keeps stats coherent with the engine's: every
        // position is a candidate and each trajectory is scanned once.
        let total_positions: usize = store.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(stats.candidates, total_positions);
        assert_eq!(stats.candidates_after_temporal, total_positions);
        assert_eq!(stats.sw_columns, total_positions as u64);
    }
}
