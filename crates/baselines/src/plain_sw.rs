//! Plain-SW: index-free Smith–Waterman scan over the whole database (§6.1).
//!
//! The strongest *non-indexing* exact method: one threshold-bounded SW scan
//! per trajectory, O(Σ|P|·|Q|)-ish with early termination. This is the
//! baseline the paper reports taking >30 minutes per query at 1M
//! trajectories.

use std::time::Instant;
use traj::TrajectoryStore;
use trajsearch_core::results::{sort_results, MatchResult};
use trajsearch_core::SearchStats;
use wed::{sw_scan_all, CostModel, Sym};

/// Scans every trajectory with the SW threshold scan; returns the exact
/// result set and phase-attributed stats (all time counted as verification).
pub fn plain_sw_search<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
) -> (Vec<MatchResult>, SearchStats) {
    let mut stats = SearchStats::default();
    let t0 = Instant::now();
    let mut out = Vec::new();
    for (id, t) in store.iter() {
        stats.sw_columns += t.len() as u64;
        for m in sw_scan_all(model, t.path(), q, tau) {
            out.push(MatchResult {
                id,
                start: m.start,
                end: m.end,
                dist: m.dist,
            });
        }
    }
    sort_results(&mut out);
    stats.verify_time = t0.elapsed();
    stats.results = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use traj::Trajectory;
    use wed::models::Lev;

    #[test]
    fn equals_naive_on_random_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let store: TrajectoryStore = (0..12)
            .map(|_| {
                let n = rng.gen_range(1..15);
                Trajectory::untimed((0..n).map(|_| rng.gen_range(0..6)).collect())
            })
            .collect();
        for _ in 0..10 {
            let qlen = rng.gen_range(1..5);
            let q: Vec<Sym> = (0..qlen).map(|_| rng.gen_range(0..6)).collect();
            let tau = rng.gen_range(0.5..3.5);
            let (got, stats) = plain_sw_search(&Lev, &store, &q, tau);
            let want = naive_search(&Lev, &store, &q, tau);
            assert_eq!(got.len(), want.len(), "q={q:?} tau={tau}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.id, g.start, g.end), (w.id, w.start, w.end));
                assert!((g.dist - w.dist).abs() < 1e-9);
            }
            assert_eq!(stats.results, got.len());
        }
    }
}
