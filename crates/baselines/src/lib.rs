//! Competitor methods from the paper's evaluation (§6.1, Appendix C).
//!
//! Every baseline returns the *same exact result set* as the OSF engine
//! (Definition 3) — they differ in candidate generation and verification
//! strategy, which is precisely what Figures 6–11 measure:
//!
//! * [`naive`] — O(Σ|P|³·|Q|) substring enumeration; correctness oracle.
//! * [`metric_naive`] — the same enumeration under DTW / LCSS(ε) /
//!   discrete Fréchet; oracles for the engine's non-WED verifiers.
//! * [`plain_sw`] — index-free Smith–Waterman scan (Plain-SW).
//! * [`dison`] — DISON adaptation: `Q'` is the shortest query *prefix* with
//!   `Σ c(q) ≥ τ` (instead of the MinCand-optimized subsequence).
//! * [`torch`] — Torch adaptation: candidates from the postings of *every*
//!   query symbol.
//! * [`qgram`] — q-gram count filtering for unit-cost models (EDR/Lev).
//! * [`dita`] — DITA-style pivot lower bounds over enumerated
//!   subtrajectories (whole-matching method forced onto subtrajectories).
//! * [`erp_index`] — ERP-index: coordinate-sum lower bound in a kd-tree over
//!   enumerated subtrajectories.
//!
//! DISON and Torch reuse the engine's verification layer, so each comes in
//! `-SW` and `-BT` flavors exactly as in the paper.

pub mod dison;
pub mod dita;
pub mod erp_index;
pub mod metric_naive;
pub mod naive;
pub mod plain_sw;
pub mod qgram;
pub mod torch;

pub use dison::Dison;
pub use dita::DitaIndex;
pub use erp_index::ErpIndex;
pub use metric_naive::{naive_dtw_search, naive_frechet_search, naive_lcss_search};
pub use naive::naive_search;
pub use plain_sw::plain_sw_search;
pub use qgram::QGramIndex;
pub use torch::Torch;
