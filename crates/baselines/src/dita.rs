//! DITA-style pivot index, adapted per Appendix C.
//!
//! DITA (Shang et al.) is a whole-matching method; to answer subtrajectory
//! queries the paper enumerates **all** subtrajectories offline and indexes
//! them — which is why it only runs on dataset fractions (Figures 9–10).
//!
//! For each subtrajectory, `K` pivot symbols are chosen (endpoints plus the
//! symbols with the largest deletion cost, the option that performed best in
//! the paper's tuning). The WED lower bound is
//! `LB(P', Q) = Σ_{p∈P'} min_{q ∈ Q ∪ {ε}} sub(p, q) ≤ wed(P, Q)`:
//! every pivot must be aligned to some query symbol or deleted. Identical
//! pivot multisets share one lower-bound evaluation (the trie of the
//! original system collapses equal pivot prefixes the same way).

use std::collections::HashMap;
use std::time::{Duration, Instant};
use traj::{TrajId, TrajectoryStore};
use trajsearch_core::results::{sort_results, MatchResult};
use trajsearch_core::SearchStats;
use wed::{wed_within, CostModel, Sym};

/// Safety cap on enumerated subtrajectories (the paper hits memory limits
/// the same way; 1.4 billion for full Beijing).
const MAX_SUBTRAJECTORIES: usize = 20_000_000;

/// Pivot-indexed subtrajectory store.
pub struct DitaIndex<'a, M: CostModel> {
    model: M,
    store: &'a TrajectoryStore,
    /// sorted pivot multiset -> subtrajectories carrying it.
    groups: HashMap<Vec<Sym>, Vec<(TrajId, u32, u32)>>,
    num_subtrajectories: usize,
    build_time: Duration,
}

impl<'a, M: CostModel> DitaIndex<'a, M> {
    /// Enumerates and indexes all subtrajectories with `k` pivots each.
    pub fn new(model: M, store: &'a TrajectoryStore, k: usize) -> Self {
        assert!(k >= 2, "need at least the two endpoint pivots");
        let total: usize = store.iter().map(|(_, t)| t.len() * (t.len() + 1) / 2).sum();
        assert!(
            total <= MAX_SUBTRAJECTORIES,
            "{total} subtrajectories exceed the enumeration cap; use a dataset fraction"
        );
        let t0 = Instant::now();
        let mut groups: HashMap<Vec<Sym>, Vec<(TrajId, u32, u32)>> = HashMap::new();
        for (id, t) in store.iter() {
            let p = t.path();
            for s in 0..p.len() {
                for e in s..p.len() {
                    let pivots = select_pivots(&model, &p[s..=e], k);
                    groups
                        .entry(pivots)
                        .or_default()
                        .push((id, s as u32, e as u32));
                }
            }
        }
        DitaIndex {
            model,
            store,
            groups,
            num_subtrajectories: total,
            build_time: t0.elapsed(),
        }
    }

    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    pub fn num_subtrajectories(&self) -> usize {
        self.num_subtrajectories
    }

    /// Approximate index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|(k, v)| {
                k.len() * std::mem::size_of::<Sym>()
                    + v.len() * std::mem::size_of::<(TrajId, u32, u32)>()
                    + std::mem::size_of::<Vec<Sym>>()
            })
            .sum()
    }

    /// Lower-bound-filtered search; exact because survivors are verified
    /// with the full WED.
    pub fn search(&self, q: &[Sym], tau: f64) -> (Vec<MatchResult>, SearchStats) {
        assert!(tau > 0.0 && !q.is_empty());
        let mut stats = SearchStats::default();
        let t0 = Instant::now();
        let mut survivors: Vec<(TrajId, u32, u32)> = Vec::new();
        for (pivots, subs) in &self.groups {
            // One LB evaluation per distinct pivot multiset.
            let lb: f64 = pivots
                .iter()
                .map(|&p| {
                    let best_sub = q
                        .iter()
                        .map(|&qs| self.model.sub(p, qs))
                        .fold(f64::INFINITY, f64::min);
                    best_sub.min(self.model.del(p))
                })
                .sum();
            if lb < tau {
                survivors.extend_from_slice(subs);
            }
        }
        stats.lookup_time = t0.elapsed();
        stats.candidates = survivors.len();
        stats.candidates_after_temporal = survivors.len();

        let t1 = Instant::now();
        let mut out = Vec::new();
        for (id, s, e) in survivors {
            let p = self.store.get(id).path();
            if let Some(d) = wed_within(&self.model, &p[s as usize..=e as usize], q, tau) {
                out.push(MatchResult {
                    id,
                    start: s as usize,
                    end: e as usize,
                    dist: d,
                });
            }
        }
        sort_results(&mut out);
        stats.verify_time = t1.elapsed();
        stats.results = out.len();
        (out, stats)
    }
}

/// Chooses up to `k` pivot positions: both endpoints plus the symbols with
/// the largest deletion cost; returns the sorted symbol multiset.
fn select_pivots<M: CostModel>(model: &M, sub: &[Sym], k: usize) -> Vec<Sym> {
    let mut chosen: Vec<usize> = vec![0, sub.len() - 1];
    chosen.dedup();
    if sub.len() > 2 && chosen.len() < k {
        let mut interior: Vec<usize> = (1..sub.len() - 1).collect();
        interior.sort_by(|&a, &b| model.del(sub[b]).total_cmp(&model.del(sub[a])));
        for pos in interior {
            if chosen.len() >= k {
                break;
            }
            chosen.push(pos);
        }
    }
    let mut pivots: Vec<Sym> = chosen.into_iter().map(|i| sub[i]).collect();
    pivots.sort_unstable();
    pivots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use traj::Trajectory;
    use wed::models::Lev;
    use wed::wed;

    fn random_store(rng: &mut ChaCha8Rng, n: usize) -> TrajectoryStore {
        (0..n)
            .map(|_| {
                let len = rng.gen_range(1..12);
                Trajectory::untimed((0..len).map(|_| rng.gen_range(0..7)).collect())
            })
            .collect()
    }

    #[test]
    fn equals_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let store = random_store(&mut rng, 10);
        let dita = DitaIndex::new(&Lev, &store, 4);
        for _ in 0..8 {
            let qlen = rng.gen_range(1..5);
            let q: Vec<Sym> = (0..qlen).map(|_| rng.gen_range(0..7)).collect();
            let tau = rng.gen_range(0.5..3.0);
            let (got, _) = dita.search(&q, tau);
            let want = naive_search(&Lev, &store, &q, tau);
            assert_eq!(got.len(), want.len(), "q={q:?} tau={tau}");
        }
    }

    #[test]
    fn lower_bound_is_sound() {
        // LB < tau must hold for every true match's group (indirectly
        // verified by result equality above); directly: LB ≤ wed on samples.
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        for _ in 0..50 {
            let sub: Vec<Sym> = (0..rng.gen_range(1..8))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let q: Vec<Sym> = (0..rng.gen_range(1..6))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let pivots = select_pivots(&Lev, &sub, 4);
            let lb: f64 = pivots
                .iter()
                .map(|&p| {
                    q.iter()
                        .map(|&qs| Lev.sub(p, qs))
                        .fold(Lev.del(p), f64::min)
                })
                .sum();
            assert!(
                lb <= wed(&Lev, &sub, &q) + 1e-9,
                "LB {lb} > wed for {sub:?} vs {q:?}"
            );
        }
    }

    #[test]
    fn pivot_count_respects_k() {
        let sub: Vec<Sym> = vec![5, 1, 2, 3, 4, 9];
        let p = select_pivots(&Lev, &sub, 3);
        assert_eq!(p.len(), 3);
        // endpoints always included
        assert!(p.contains(&5) && p.contains(&9));
        let single = select_pivots(&Lev, &[7], 4);
        assert_eq!(single, vec![7]);
    }

    #[test]
    fn subtrajectory_count_reported() {
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![1, 2, 3])); // 6 subtrajectories
        store.push(Trajectory::untimed(vec![4, 5])); // 3
        let dita = DitaIndex::new(&Lev, &store, 3);
        assert_eq!(dita.num_subtrajectories(), 9);
        assert!(dita.size_bytes() > 0);
    }
}
