//! q-gram count filtering for unit-cost WED instances (EDR/Lev), per
//! Appendix C of the paper.
//!
//! Offline, every length-`q` window of every trajectory is indexed. Online,
//! each query gram `x` is expanded to the grams that ε-match it elementwise
//! (the cartesian product of the substitution neighborhoods of its symbols),
//! occurrences are counted per trajectory, and trajectories with fewer than
//! `|Q| − q + 1 − ops·q` matching grams are pruned — the classic count bound
//! with `|Q|` lower-bounding `max(|P'|, |Q|)` and `ops` the number of
//! unit-cost edits allowed strictly below τ. Survivors are verified by the
//! SW threshold scan.
//!
//! Only meaningful for models whose edit operations all cost 1 (EDR, Lev,
//! NetEDR); the constructor enforces this on a sample.

use std::collections::HashMap;
use std::time::Instant;
use traj::{TrajId, TrajectoryStore};
use trajsearch_core::results::{sort_results, MatchResult};
use trajsearch_core::SearchStats;
use wed::{sw_scan_all, Sym, WedInstance};

/// q-gram inverted index over trajectory symbol windows.
pub struct QGramIndex<'a, M: WedInstance> {
    model: M,
    store: &'a TrajectoryStore,
    q: usize,
    /// gram -> one entry per occurrence (with multiplicity).
    grams: HashMap<Vec<Sym>, Vec<TrajId>>,
    build_time: std::time::Duration,
}

impl<'a, M: WedInstance> QGramIndex<'a, M> {
    /// Builds the gram index; `gram_len` is the paper's q (they use 3).
    pub fn new(model: M, store: &'a TrajectoryStore, gram_len: usize) -> Self {
        assert!(gram_len >= 1);
        let t0 = Instant::now();
        let mut grams: HashMap<Vec<Sym>, Vec<TrajId>> = HashMap::new();
        for (id, t) in store.iter() {
            for w in t.path().windows(gram_len) {
                grams.entry(w.to_vec()).or_default().push(id);
            }
        }
        QGramIndex {
            model,
            store,
            q: gram_len,
            grams,
            build_time: t0.elapsed(),
        }
    }

    pub fn build_time(&self) -> std::time::Duration {
        self.build_time
    }

    /// Approximate index size in bytes (gram keys + postings).
    pub fn size_bytes(&self) -> usize {
        self.grams
            .iter()
            .map(|(k, v)| {
                k.len() * std::mem::size_of::<Sym>()
                    + v.len() * std::mem::size_of::<TrajId>()
                    + std::mem::size_of::<Vec<Sym>>()
            })
            .sum()
    }

    /// Expands a query gram to all ε-matching grams (cartesian product of
    /// the per-position neighborhoods) and accumulates per-trajectory
    /// occurrence counts.
    fn count_matches(&self, gram: &[Sym], counts: &mut HashMap<TrajId, usize>) {
        let neighborhoods: Vec<Vec<Sym>> = gram.iter().map(|&s| self.model.neighbors(s)).collect();
        let mut idx = vec![0usize; gram.len()];
        let mut key = vec![0 as Sym; gram.len()];
        loop {
            for (d, &i) in idx.iter().enumerate() {
                key[d] = neighborhoods[d][i];
            }
            if let Some(posting) = self.grams.get(&key) {
                for &id in posting {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            // Odometer increment over the product space.
            let mut d = 0;
            loop {
                if d == gram.len() {
                    return;
                }
                idx[d] += 1;
                if idx[d] < neighborhoods[d].len() {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }

    /// Filter-and-verify search. Exact for unit-cost models.
    pub fn search(&self, query: &[Sym], tau: f64) -> (Vec<MatchResult>, SearchStats) {
        assert!(tau > 0.0 && !query.is_empty());
        let mut stats = SearchStats::default();
        let t0 = Instant::now();

        // Edits allowed strictly below tau (unit costs).
        let ops = (tau - 1e-12).floor().max(0.0) as i64;
        let needed = query.len() as i64 - self.q as i64 + 1 - ops * self.q as i64;

        let candidate_ids: Vec<TrajId> = if query.len() < self.q || needed <= 0 {
            // No useful bound: every trajectory is a candidate.
            self.store.iter().map(|(id, _)| id).collect()
        } else {
            let mut counts: HashMap<TrajId, usize> = HashMap::new();
            for gram in query.windows(self.q) {
                self.count_matches(gram, &mut counts);
            }
            let mut ids: Vec<TrajId> = counts
                .into_iter()
                .filter(|&(_, c)| c as i64 >= needed)
                .map(|(id, _)| id)
                .collect();
            ids.sort_unstable();
            ids
        };
        stats.lookup_time = t0.elapsed();
        stats.candidates = candidate_ids.len();
        stats.candidates_after_temporal = candidate_ids.len();

        let t1 = Instant::now();
        let mut out = Vec::new();
        for id in candidate_ids {
            let t = self.store.get(id);
            stats.sw_columns += t.len() as u64;
            for m in sw_scan_all(&self.model, t.path(), query, tau) {
                out.push(MatchResult {
                    id,
                    start: m.start,
                    end: m.end,
                    dist: m.dist,
                });
            }
        }
        sort_results(&mut out);
        stats.verify_time = t1.elapsed();
        stats.results = out.len();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use traj::Trajectory;
    use wed::models::Lev;

    fn random_store(rng: &mut ChaCha8Rng, n: usize, alpha: u32) -> TrajectoryStore {
        (0..n)
            .map(|_| {
                let len = rng.gen_range(3..20);
                Trajectory::untimed((0..len).map(|_| rng.gen_range(0..alpha)).collect())
            })
            .collect()
    }

    #[test]
    fn equals_naive_for_lev() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let store = random_store(&mut rng, 20, 6);
        let idx = QGramIndex::new(&Lev, &store, 3);
        for _ in 0..10 {
            let qlen = rng.gen_range(3..8);
            let q: Vec<Sym> = (0..qlen).map(|_| rng.gen_range(0..6)).collect();
            let tau = rng.gen_range(0.5..3.0);
            let (got, _) = idx.search(&q, tau);
            let want = naive_search(&Lev, &store, &q, tau);
            assert_eq!(got.len(), want.len(), "q={q:?} tau={tau}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.id, g.start, g.end), (w.id, w.start, w.end));
            }
        }
    }

    #[test]
    fn short_queries_degrade_to_full_scan() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let store = random_store(&mut rng, 10, 5);
        let idx = QGramIndex::new(&Lev, &store, 3);
        let (got, stats) = idx.search(&[1, 2], 1.0); // |Q| < q
        assert_eq!(stats.candidates, store.len());
        let want = naive_search(&Lev, &store, &[1, 2], 1.0);
        assert_eq!(got.len(), want.len());
    }

    #[test]
    fn count_filter_prunes_some_trajectories() {
        // With a tight tau and distinctive query symbols, the filter must
        // prune at least the trajectories sharing no gram with Q.
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![1, 2, 3, 4, 5]));
        store.push(Trajectory::untimed(vec![7, 7, 7, 7, 7]));
        let idx = QGramIndex::new(&Lev, &store, 3);
        let (got, stats) = idx.search(&[1, 2, 3, 4], 1.0);
        assert!(stats.candidates < store.len());
        assert!(got.iter().all(|m| m.id == 0));
        assert!(!got.is_empty());
    }

    #[test]
    fn index_size_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let store = random_store(&mut rng, 10, 5);
        let idx = QGramIndex::new(&Lev, &store, 3);
        assert!(idx.size_bytes() > 0);
    }
}
