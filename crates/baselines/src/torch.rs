//! Torch adaptation (§6.1).
//!
//! Torch (Wang et al.) generates candidates by scanning the postings lists
//! of *every* query symbol. Its `Q'` is all of `Q` — trivially a
//! τ-subsequence whenever `c(Q) ≥ τ`, but the candidate set is a superset of
//! every other filtering strategy's (Figure 11 shows it is ~25× OSF's).
//! Verification reuses the engine layer (`Torch-SW` / `Torch-BT`).

use std::time::Instant;
use traj::TrajectoryStore;
use trajsearch_core::results::MatchResult;
use trajsearch_core::verify::{verify_candidates, Candidate, VerifyMode};
use trajsearch_core::{InvertedIndex, SearchStats};
use wed::{Sym, WedInstance};

/// Torch-style all-symbols-filtered search.
pub struct Torch<'a, M: WedInstance> {
    model: M,
    store: &'a TrajectoryStore,
    index: InvertedIndex,
    verify: VerifyMode,
}

impl<'a, M: WedInstance> Torch<'a, M> {
    pub fn new(
        model: M,
        store: &'a TrajectoryStore,
        alphabet_size: usize,
        verify: VerifyMode,
    ) -> Self {
        let index = InvertedIndex::build(store, alphabet_size);
        Torch {
            model,
            store,
            index,
            verify,
        }
    }

    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    pub fn search(&self, q: &[Sym], tau: f64) -> (Vec<MatchResult>, SearchStats) {
        assert!(tau > 0.0 && !q.is_empty());
        let mut stats = SearchStats::default();

        // Soundness gate: Q as a whole must still be a τ-subsequence.
        let t0 = Instant::now();
        let c_total: f64 = q.iter().map(|&s| self.model.lower_cost(s)).sum();
        stats.mincand_time = t0.elapsed();
        if c_total < tau {
            // Same exactness fallback (and stats contract) as the engine.
            let matches = trajsearch_core::exact_fallback_scan(
                &self.model,
                self.store,
                q,
                tau,
                None,
                false,
                &mut stats,
            );
            return (matches, stats);
        }
        stats.tsubseq_len = q.len();

        let t1 = Instant::now();
        let mut candidates = Vec::new();
        for (pos, &sym) in q.iter().enumerate() {
            for b in self.model.neighbors(sym) {
                for &(id, j) in self.index.postings(b) {
                    candidates.push(Candidate {
                        id,
                        j,
                        iq: pos as u32,
                    });
                }
            }
        }
        stats.lookup_time = t1.elapsed();

        let t2 = Instant::now();
        let matches = verify_candidates(
            &self.model,
            self.store,
            |id| self.index.span(id),
            q,
            tau,
            &candidates,
            self.verify,
            None,
            false,
            &mut stats,
        );
        stats.verify_time = t2.elapsed();
        (matches, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use traj::Trajectory;
    use trajsearch_core::{EngineBuilder, Query};
    use wed::models::Lev;

    fn random_store(rng: &mut ChaCha8Rng, n: usize) -> TrajectoryStore {
        (0..n)
            .map(|_| {
                let len = rng.gen_range(1..15);
                Trajectory::untimed((0..len).map(|_| rng.gen_range(0..8)).collect())
            })
            .collect()
    }

    #[test]
    fn equals_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let store = random_store(&mut rng, 15);
        for mode in [VerifyMode::Sw, VerifyMode::Trie] {
            let torch = Torch::new(&Lev, &store, 8, mode);
            for _ in 0..8 {
                let qlen = rng.gen_range(1..5);
                let q: Vec<Sym> = (0..qlen).map(|_| rng.gen_range(0..8)).collect();
                let tau = rng.gen_range(0.5..(qlen as f64 + 0.5));
                let (got, _) = torch.search(&q, tau);
                let want = naive_search(&Lev, &store, &q, tau);
                assert_eq!(got.len(), want.len(), "mode={mode:?} q={q:?} tau={tau}");
            }
        }
    }

    #[test]
    fn candidate_count_dominates_osf() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let store = random_store(&mut rng, 30);
        let torch = Torch::new(&Lev, &store, 8, VerifyMode::Trie);
        let engine = EngineBuilder::new(&Lev, &store, 8).build();
        for _ in 0..6 {
            let q: Vec<Sym> = (0..4).map(|_| rng.gen_range(0..8)).collect();
            let tau = 1.5;
            let (_, torch_stats) = torch.search(&q, tau);
            let osf = engine
                .run(&Query::threshold(q.clone(), tau).build().unwrap())
                .unwrap();
            assert!(
                torch_stats.candidates >= osf.stats.candidates,
                "Torch candidates {} < OSF {}",
                torch_stats.candidates,
                osf.stats.candidates
            );
        }
    }
}
