//! Naive substring enumeration — the correctness oracle.
//!
//! Computes `wed(P[s..=t], Q)` for every substring of every trajectory
//! (O(Σ|P|³·|Q|) as noted in §3). Far too slow for real workloads but
//! unambiguous; every other method is tested against it.

use traj::TrajectoryStore;
use trajsearch_core::results::{sort_results, MatchResult};
use wed::{wed, CostModel, Sym};

/// All `(id, s, t)` with `wed(P^(id)[s..=t], Q) < tau`, by brute force.
pub fn naive_search<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
) -> Vec<MatchResult> {
    let mut out = Vec::new();
    for (id, t) in store.iter() {
        let p = t.path();
        for s in 0..p.len() {
            for e in s..p.len() {
                let d = wed(model, &p[s..=e], q);
                if d < tau {
                    out.push(MatchResult {
                        id,
                        start: s,
                        end: e,
                        dist: d,
                    });
                }
            }
        }
    }
    sort_results(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::Trajectory;
    use wed::models::Lev;

    #[test]
    fn finds_exact_and_near_matches() {
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![0, 1, 2, 3]));
        let got = naive_search(&Lev, &store, &[1, 2], 1.0);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end, got[0].dist), (1, 2, 0.0));
        let wider = naive_search(&Lev, &store, &[1, 2], 2.0);
        assert!(wider.len() > 1);
        assert!(wider.iter().all(|m| m.dist < 2.0));
    }

    #[test]
    fn output_is_sorted() {
        let mut store = TrajectoryStore::new();
        store.push(Trajectory::untimed(vec![1, 1, 1]));
        store.push(Trajectory::untimed(vec![1, 1]));
        let got = naive_search(&Lev, &store, &[1], 1.0);
        let keys: Vec<_> = got.iter().map(|m| (m.id, m.start, m.end)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
