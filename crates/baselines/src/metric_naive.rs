//! Naive substring enumeration under the non-WED metrics — the
//! correctness oracles for the engine's [`Metric`] back halves.
//!
//! Each oracle brute-forces every substring of every trajectory through the
//! *whole-sequence* distance functions of [`wed::metric`]
//! ([`wed::dtw_dist`] / [`wed::lcss_dist`] / [`wed::frechet_dist`]) — an
//! independent DP per substring, sharing no code with the incremental
//! scan-all recurrences the engine verifies with — so agreement is evidence,
//! not tautology.
//!
//! [`Metric`]: trajsearch_core::Metric

use traj::TrajectoryStore;
use trajsearch_core::results::{sort_results, MatchResult};
use wed::{dtw_dist, frechet_dist, lcss_dist, CostModel, Sym};

fn naive_metric_search(
    store: &TrajectoryStore,
    tau: f64,
    dist: impl Fn(&[Sym]) -> f64,
) -> Vec<MatchResult> {
    let mut out = Vec::new();
    for (id, t) in store.iter() {
        let p = t.path();
        for s in 0..p.len() {
            for e in s..p.len() {
                let d = dist(&p[s..=e]);
                if d < tau {
                    out.push(MatchResult {
                        id,
                        start: s,
                        end: e,
                        dist: d,
                    });
                }
            }
        }
    }
    sort_results(&mut out);
    out
}

/// All `(id, s, t)` with `dtw(P^(id)[s..=t], Q) < tau`, by brute force.
pub fn naive_dtw_search<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
) -> Vec<MatchResult> {
    naive_metric_search(store, tau, |sub| dtw_dist(model, sub, q))
}

/// All `(id, s, t)` with `lcss_dist(P^(id)[s..=t], Q) < tau` under the
/// ε-match `sub(a, b) <= eps`, by brute force.
pub fn naive_lcss_search<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
    eps: f64,
) -> Vec<MatchResult> {
    naive_metric_search(store, tau, |sub| lcss_dist(model, sub, q, eps))
}

/// All `(id, s, t)` with `frechet(P^(id)[s..=t], Q) < tau`, by brute force.
pub fn naive_frechet_search<M: CostModel>(
    model: &M,
    store: &TrajectoryStore,
    q: &[Sym],
    tau: f64,
) -> Vec<MatchResult> {
    naive_metric_search(store, tau, |sub| frechet_dist(model, sub, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::Trajectory;
    use wed::models::Lev;

    fn store() -> TrajectoryStore {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::untimed(vec![0, 1, 2, 3]));
        s.push(Trajectory::untimed(vec![1, 2, 1, 2]));
        s
    }

    #[test]
    fn dtw_finds_exact_matches() {
        let got = naive_dtw_search(&Lev, &store(), &[1, 2], 0.5);
        // Exact [1,2] substrings plus repetitions DTW maps for free
        // (e.g. [1,2,2] warps onto [1,2] at cost 0 only if symbols repeat).
        assert!(got.iter().any(|m| m.id == 0 && (m.start, m.end) == (1, 2)));
        assert!(got.iter().all(|m| m.dist < 0.5));
    }

    #[test]
    fn lcss_counts_unmatched_query_symbols() {
        // Under Lev's 0/1 sub costs, eps = 0 means exact symbol matches.
        let got = naive_lcss_search(&Lev, &store(), &[1, 9], 1.5, 0.0);
        // Any substring containing a 1 leaves only "9" unmatched: dist 1.
        assert!(got.iter().any(|m| m.dist == 1.0));
        assert!(got.iter().all(|m| m.dist < 1.5));
    }

    #[test]
    fn frechet_is_a_bottleneck() {
        // [1,2] vs [1,2] has bottleneck 0; any non-equal coupling pair
        // costs 1 under Lev, so tau = 0.5 keeps exact alignments only.
        let got = naive_frechet_search(&Lev, &store(), &[1, 2], 0.5);
        assert!(!got.is_empty());
        assert!(got.iter().all(|m| m.dist == 0.0));
    }

    #[test]
    fn outputs_are_sorted() {
        for got in [
            naive_dtw_search(&Lev, &store(), &[1, 2], 2.0),
            naive_lcss_search(&Lev, &store(), &[1, 2], 2.0, 0.0),
            naive_frechet_search(&Lev, &store(), &[1, 2], 2.0),
        ] {
            let keys: Vec<_> = got.iter().map(|m| (m.id, m.start, m.end)).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
        }
    }
}
