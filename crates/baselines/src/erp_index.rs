//! ERP-index baseline (§6.1): coordinate-sum lower bound over enumerated
//! subtrajectories.
//!
//! Chen & Ng's ERP index exploits that, with coordinates centered on the
//! reference point `g`, every edit operation changes the coordinate sum by
//! at most its cost: substitution `a→b` moves the sum by `‖a−b‖ = sub`,
//! insertion/deletion by `‖a−g‖ = ins/del`. By the triangle inequality over
//! any edit script, `‖Σ(P−g) − Σ(Q−g)‖ ≤ ERP(P, Q)` — so a range query of
//! radius τ around the query's centered sum is a complete filter.
//!
//! Like DITA, whole-matching semantics force offline enumeration of all
//! subtrajectories; the paper therefore evaluates it on dataset fractions.

use rnet::{KdTree, Point};
use std::time::{Duration, Instant};
use traj::{TrajId, TrajectoryStore};
use trajsearch_core::results::{sort_results, MatchResult};
use trajsearch_core::SearchStats;
use wed::models::Erp;
use wed::{wed_within, Sym};

/// Cap matching [`crate::dita`]'s enumeration guard.
const MAX_SUBTRAJECTORIES: usize = 20_000_000;

/// kd-tree over reference-centered coordinate sums of all subtrajectories.
pub struct ErpIndex<'a> {
    erp: &'a Erp,
    store: &'a TrajectoryStore,
    tree: KdTree,
    entries: Vec<(TrajId, u32, u32)>,
    build_time: Duration,
}

impl<'a> ErpIndex<'a> {
    pub fn new(erp: &'a Erp, store: &'a TrajectoryStore) -> Self {
        let total: usize = store.iter().map(|(_, t)| t.len() * (t.len() + 1) / 2).sum();
        assert!(
            total <= MAX_SUBTRAJECTORIES,
            "{total} subtrajectories exceed the enumeration cap; use a dataset fraction"
        );
        let t0 = Instant::now();
        let g = erp.reference();
        let mut points = Vec::with_capacity(total);
        let mut entries = Vec::with_capacity(total);
        for (id, t) in store.iter() {
            let p = t.path();
            // Prefix sums of centered coordinates for O(1) range sums.
            let mut pre = Vec::with_capacity(p.len() + 1);
            pre.push(Point::new(0.0, 0.0));
            for &sym in p {
                let c = erp.coord(sym).sub(&g);
                pre.push(pre.last().unwrap().add(&c));
            }
            for s in 0..p.len() {
                for e in s..p.len() {
                    points.push(pre[e + 1].sub(&pre[s]));
                    entries.push((id, s as u32, e as u32));
                }
            }
        }
        let tree = KdTree::build(&points);
        ErpIndex {
            erp,
            store,
            tree,
            entries,
            build_time: t0.elapsed(),
        }
    }

    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    pub fn num_subtrajectories(&self) -> usize {
        self.entries.len()
    }

    /// Approximate index size in bytes (points + entry triples).
    pub fn size_bytes(&self) -> usize {
        self.entries.len()
            * (std::mem::size_of::<Point>() + std::mem::size_of::<(TrajId, u32, u32)>())
    }

    /// Range-filtered exact search under ERP.
    pub fn search(&self, q: &[Sym], tau: f64) -> (Vec<MatchResult>, SearchStats) {
        assert!(tau > 0.0 && !q.is_empty());
        let mut stats = SearchStats::default();
        let t0 = Instant::now();
        let g = self.erp.reference();
        let center = q.iter().fold(Point::new(0.0, 0.0), |acc, &sym| {
            acc.add(&self.erp.coord(sym).sub(&g))
        });
        let hits = self.tree.range(center, tau);
        stats.lookup_time = t0.elapsed();
        stats.candidates = hits.len();
        stats.candidates_after_temporal = hits.len();

        let t1 = Instant::now();
        let mut out = Vec::new();
        for h in hits {
            let (id, s, e) = self.entries[h as usize];
            let p = self.store.get(id).path();
            if let Some(d) = wed_within(self.erp, &p[s as usize..=e as usize], q, tau) {
                out.push(MatchResult {
                    id,
                    start: s as usize,
                    end: e as usize,
                    dist: d,
                });
            }
        }
        sort_results(&mut out);
        stats.verify_time = t1.elapsed();
        stats.results = out.len();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use rnet::{CityParams, NetworkKind, RoadNetwork};
    use std::sync::Arc;
    use traj::generator::random_walk;
    use traj::Trajectory;
    use wed::wed;

    fn setup() -> (Arc<RoadNetwork>, TrajectoryStore) {
        let net = Arc::new(CityParams::tiny(NetworkKind::Grid).generate());
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let store: TrajectoryStore = (0..8)
            .map(|_| {
                let start = rng.gen_range(0..net.num_vertices() as u32);
                let len = rng.gen_range(2..8);
                Trajectory::untimed(random_walk(&net, &mut rng, start, len))
            })
            .collect();
        (net, store)
    }

    #[test]
    fn equals_naive_for_erp() {
        let (net, store) = setup();
        let erp = Erp::new(net.clone(), 10.0);
        let idx = ErpIndex::new(&erp, &store);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..6 {
            let start = rng.gen_range(0..net.num_vertices() as u32);
            let q = random_walk(&net, &mut rng, start, 4);
            // tau around a couple of grid cells of cost.
            let tau = rng.gen_range(100.0..500.0);
            let (got, _) = idx.search(&q, tau);
            let want = naive_search(&erp, &store, &q, tau);
            assert_eq!(got.len(), want.len(), "q={q:?} tau={tau}");
            for (gm, wm) in got.iter().zip(&want) {
                assert_eq!((gm.id, gm.start, gm.end), (wm.id, wm.start, wm.end));
            }
        }
    }

    #[test]
    fn sum_lower_bound_holds() {
        let (net, _store) = setup();
        let erp = Erp::new(net.clone(), 10.0);
        let g = erp.reference();
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        for _ in 0..40 {
            let (sa, la) = (
                rng.gen_range(0..net.num_vertices() as u32),
                rng.gen_range(1..7),
            );
            let a = random_walk(&net, &mut rng, sa, la);
            let (sb, lb_len) = (
                rng.gen_range(0..net.num_vertices() as u32),
                rng.gen_range(1..7),
            );
            let b = random_walk(&net, &mut rng, sb, lb_len);
            let sum = |s: &[Sym]| {
                s.iter().fold(Point::new(0.0, 0.0), |acc, &v| {
                    acc.add(&erp.coord(v).sub(&g))
                })
            };
            let lb = sum(&a).sub(&sum(&b)).norm();
            let d = wed(&erp, &a, &b);
            assert!(lb <= d + 1e-6, "LB {lb} > ERP {d}");
        }
    }

    #[test]
    fn candidate_count_and_size_reported() {
        let (net, store) = setup();
        let erp = Erp::new(net.clone(), 10.0);
        let idx = ErpIndex::new(&erp, &store);
        let expected: usize = store.iter().map(|(_, t)| t.len() * (t.len() + 1) / 2).sum();
        assert_eq!(idx.num_subtrajectories(), expected);
        assert!(idx.size_bytes() > 0);
        let (_, stats) = idx.search(&[0, 1], 200.0);
        assert!(stats.candidates <= expected);
    }
}
