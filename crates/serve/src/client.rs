//! Synchronous client for the serve protocol, with pipelined batch
//! submission, typed per-query outcomes and an opt-in retry policy.
//!
//! [`Client::query`] is one request / one reply. [`Client::query_batch`]
//! pipelines a whole workload, keeping a bounded window of requests in
//! flight ahead of the replies it reads, and collects replies **by id** —
//! the server's workers finish out of order — returning them in
//! submission order. One TCP connection carries the whole conversation; a
//! transport failure is a [`ClientError`], while each query's server-side
//! fate is a typed [`QueryOutcome`] *value* so a batch can mix answers,
//! degraded answers and rejections.
//!
//! # Retry policy
//!
//! A [`RetryPolicy`] re-submits **only `overloaded` rejections** — the one
//! typed kind that guarantees the server never admitted the query, so a
//! retry can never double-apply work (and results stay exactly-once even
//! for hypothetical non-idempotent handlers). `deadline_exceeded` is never
//! retried: the caller's budget is spent, and the reply proves the server
//! already aged the query out. Everything else (`invalid_query`,
//! `shutting_down`, …) is deterministic and equally unretryable.

use crate::metrics::MetricsSnapshot;
use crate::proto::{
    read_frame, write_frame, DegradedInfo, Reply, Request, ServerError, ServerErrorKind, ShardInfo,
    TraceEntry, PROTO_MAJOR, PROTO_MINOR,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use trajsearch_core::{Query, Response};

/// A client-side failure. `Server` wraps the typed per-query error for the
/// single-query convenience APIs; transport and protocol failures poison
/// the connection (drop the client and reconnect).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server spoke something that is not the protocol (or closed
    /// mid-conversation).
    Protocol(String),
    /// The server answered with a typed error frame.
    Server(ServerError),
    /// The server answered, but with a degraded reply (shards missing) —
    /// surfaced as an error only by the strict single-query [`Client::query`];
    /// [`Client::query_batch`] returns it as a [`QueryOutcome`] value.
    Degraded(DegradedInfo),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Degraded(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One query's fate inside a [`Client::query_batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// A complete answer.
    Answered(Response),
    /// The query ran on a coordinator that lost shards; the partial answer
    /// (when the server chose to include one) plus the typed account of
    /// what is missing.
    Degraded {
        degraded: DegradedInfo,
        response: Option<Response>,
    },
    /// A typed server-side rejection (overload, deadline, invalid, …).
    Rejected(ServerError),
}

impl QueryOutcome {
    /// The complete answer, if this outcome is one.
    pub fn response(&self) -> Option<&Response> {
        match self {
            QueryOutcome::Answered(r) => Some(r),
            _ => None,
        }
    }

    pub fn is_answered(&self) -> bool {
        matches!(self, QueryOutcome::Answered(_))
    }

    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryOutcome::Degraded { .. })
    }

    /// The typed rejection, if this outcome is one.
    pub fn rejection(&self) -> Option<&ServerError> {
        match self {
            QueryOutcome::Rejected(e) => Some(e),
            _ => None,
        }
    }

    /// Strict view: only a complete answer is `Ok`.
    pub fn into_result(self) -> Result<Response, ClientError> {
        match self {
            QueryOutcome::Answered(r) => Ok(r),
            QueryOutcome::Degraded { degraded, .. } => Err(ClientError::Degraded(degraded)),
            QueryOutcome::Rejected(e) => Err(ClientError::Server(e)),
        }
    }
}

/// When and how often to re-submit rejected queries; see the
/// [module docs](self) for why only `overloaded` qualifies.
///
/// ```
/// use trajsearch_serve::RetryPolicy;
/// use std::time::Duration;
/// let policy = RetryPolicy::new()
///     .max_attempts(3)
///     .backoff(Duration::from_millis(5));
/// assert_eq!(policy.attempts(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    backoff: Duration,
}

impl Default for RetryPolicy {
    /// No retries — every rejection surfaces immediately.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Starts from the no-retry default; chain
    /// [`max_attempts`](RetryPolicy::max_attempts) /
    /// [`backoff`](RetryPolicy::backoff).
    pub fn new() -> RetryPolicy {
        RetryPolicy::default()
    }

    /// Total attempts per query including the first; clamped to at least 1.
    pub fn max_attempts(mut self, n: u32) -> RetryPolicy {
        self.max_attempts = n.max(1);
        self
    }

    /// Fixed sleep before each retry round (the server signals overload
    /// when its queue is full — hammering it back instantly defeats the
    /// backpressure).
    pub fn backoff(mut self, d: Duration) -> RetryPolicy {
        self.backoff = d;
        self
    }

    pub fn attempts(&self) -> u32 {
        self.max_attempts
    }

    pub fn backoff_duration(&self) -> Duration {
        self.backoff
    }

    /// The retry predicate: `overloaded` only.
    pub fn retries(&self, error: &ServerError) -> bool {
        self.max_attempts > 1 && error.kind == ServerErrorKind::Overloaded
    }
}

/// Maximum requests in flight per connection during
/// [`Client::query_batch`]. Deep enough to keep every worker busy and
/// amortize flushes; bounded so the pipeline can never wedge both sockets'
/// buffers with unread frames.
const PIPELINE_WINDOW: usize = 64;

/// One connection to a serve front-end (query server, coordinator or shard
/// server — the framing and the `stats`/`hello` surface are shared).
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
    retry: RetryPolicy,
}

/// The server's negotiated capabilities, as reported by
/// [`Client::hello_caps`]: protocol version plus the advertised metric
/// list.
///
/// An **empty** `metrics` list means the peer predates protocol minor 2
/// (it never sent the field) — such servers verify WED only, which is what
/// [`supports`](HelloCaps::supports) encodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloCaps {
    /// Server protocol major version.
    pub major: u32,
    /// Server protocol minor version.
    pub minor: u32,
    /// Metric names the server can verify (`"wed"`, `"dtw"`, …). Empty
    /// for pre-minor-2 servers.
    pub metrics: Vec<String>,
}

impl HelloCaps {
    /// Whether the server can verify queries under the named metric. A
    /// legacy server (empty list) supports exactly `"wed"`.
    pub fn supports(&self, name: &str) -> bool {
        if self.metrics.is_empty() {
            name == "wed"
        } else {
            self.metrics.iter().any(|m| m == name)
        }
    }
}

impl Client {
    /// Connects (blocking, no read timeout: replies to admitted queries
    /// always arrive — the server's drain guarantee).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a dial timeout — what a fan-out client uses so one
    /// dead shard endpoint cannot block the whole cluster connect.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect_timeout(addr, timeout)?)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: BufWriter::new(stream),
            reader,
            next_id: 1,
            retry: RetryPolicy::default(),
        })
    }

    /// Sets the retry policy for [`query`](Client::query) /
    /// [`query_batch`](Client::query_batch) (builder style).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Client {
        self.retry = policy;
        self
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Bounds every reply wait; `None` restores blocking reads. With a
    /// timeout set, a slow or dead server surfaces as
    /// [`ClientError::Io`] (`WouldBlock`/`TimedOut`) instead of a hang —
    /// the per-shard deadline mechanism of the fan-out client.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Allocates the next request id — for callers driving
    /// [`send_request`](Client::send_request) /
    /// [`recv_reply`](Client::recv_reply) directly.
    pub fn allocate_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Writes one request frame without flushing — callers batch frames
    /// and [`flush`](Client::flush) once.
    pub fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &request.to_json())?;
        Ok(())
    }

    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one reply frame (respecting any read timeout).
    pub fn recv_reply(&mut self) -> Result<Reply, ClientError> {
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Reply::from_json(&frame).map_err(ClientError::Protocol)
    }

    fn round_trip(&mut self, request: &Request) -> Result<Reply, ClientError> {
        self.send_request(request)?;
        self.flush()?;
        self.recv_reply()
    }

    /// Version negotiation: announces [`PROTO_MAJOR`]/[`PROTO_MINOR`],
    /// returns the server's `(major, minor)`. A major mismatch comes back
    /// as [`ClientError::Server`] with kind `unsupported_version`. See
    /// [`hello_caps`](Client::hello_caps) for the capability list.
    pub fn hello(&mut self) -> Result<(u32, u32), ClientError> {
        let caps = self.hello_caps()?;
        Ok((caps.major, caps.minor))
    }

    /// [`hello`](Client::hello) with the full negotiated capabilities,
    /// including the server's advertised metric list.
    pub fn hello_caps(&mut self) -> Result<HelloCaps, ClientError> {
        let id = self.allocate_id();
        match self.round_trip(&Request::Hello {
            id,
            major: PROTO_MAJOR,
            minor: PROTO_MINOR,
        })? {
            Reply::Hello {
                id: got,
                major,
                minor,
                metrics,
            } if got == id => Ok(HelloCaps {
                major,
                minor,
                metrics,
            }),
            Reply::Error { error, .. } => Err(ClientError::Server(error)),
            other => Err(ClientError::Protocol(format!(
                "expected hello reply for id {id}, got {other:?}"
            ))),
        }
    }

    /// Fetches a shard server's self-description.
    pub fn shard_info(&mut self) -> Result<ShardInfo, ClientError> {
        let id = self.allocate_id();
        match self.round_trip(&Request::ShardInfo { id })? {
            Reply::ShardInfo { id: got, info } if got == id => Ok(info),
            Reply::Error { error, .. } => Err(ClientError::Server(error)),
            other => Err(ClientError::Protocol(format!(
                "expected shard_info reply for id {id}, got {other:?}"
            ))),
        }
    }

    /// Sends one query and waits for its reply. Strict: a degraded reply
    /// or typed rejection is an `Err` here — use
    /// [`query_batch`](Client::query_batch) to observe outcomes as values.
    pub fn query(&mut self, query: &Query) -> Result<Response, ClientError> {
        let mut outcomes = self.query_batch(std::slice::from_ref(query))?;
        outcomes
            .pop()
            .expect("one outcome per submitted query")
            .into_result()
    }

    /// Pipelines the whole workload on this connection, then applies the
    /// retry policy to `overloaded` rejections (only — see the
    /// [module docs](self)). Outcomes come back in submission order;
    /// per-query outcomes are independent — one query's rejection does not
    /// fail its neighbors.
    pub fn query_batch(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, ClientError> {
        let mut outcomes = self.query_batch_once(queries)?;
        let policy = self.retry;
        for _round in 1..policy.attempts() {
            let pending: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o, QueryOutcome::Rejected(e) if policy.retries(e)))
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            std::thread::sleep(policy.backoff_duration());
            let retry_queries: Vec<Query> = pending.iter().map(|&i| queries[i].clone()).collect();
            let retried = self.query_batch_once(&retry_queries)?;
            for (slot, outcome) in pending.into_iter().zip(retried) {
                outcomes[slot] = outcome;
            }
        }
        Ok(outcomes)
    }

    /// One pipelined pass: request frames are written ahead of the replies
    /// being read — but never more than `PIPELINE_WINDOW` (64) ahead, so
    /// the client is always draining replies whenever the window is full.
    /// (Writing an unbounded batch before reading anything can deadlock
    /// once both sockets' kernel buffers fill: the server blocks writing
    /// replies nobody reads, the client blocks writing requests nobody
    /// accepts.) Replies are collected by id and returned in submission
    /// order.
    fn query_batch_once(&mut self, queries: &[Query]) -> Result<Vec<QueryOutcome>, ClientError> {
        let ids: Vec<u64> = queries.iter().map(|_| self.allocate_id()).collect();

        let mut slots: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        let mut sent = 0usize;
        let mut remaining = queries.len();
        while remaining > 0 {
            // Top the window up, then flush once for the burst.
            if sent < queries.len() && sent - (queries.len() - remaining) < PIPELINE_WINDOW {
                while sent < queries.len() && sent - (queries.len() - remaining) < PIPELINE_WINDOW {
                    self.send_request(&Request::Query {
                        id: ids[sent],
                        query: queries[sent].clone(),
                        trace_id: None,
                    })?;
                    sent += 1;
                }
                self.flush()?;
            }
            let reply = self.recv_reply()?;
            let (id, outcome) = match reply {
                Reply::Response { id, response } => (id, QueryOutcome::Answered(response)),
                Reply::Degraded {
                    id,
                    degraded,
                    response,
                } => (id, QueryOutcome::Degraded { degraded, response }),
                Reply::Error {
                    id: Some(id),
                    error,
                } => (id, QueryOutcome::Rejected(error)),
                Reply::Error { id: None, error } => {
                    // The server could not attribute the failure to a
                    // request — the conversation is broken.
                    return Err(ClientError::Protocol(format!(
                        "unattributed server error: {error}"
                    )));
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected {other:?} during a query batch"
                    )));
                }
            };
            let slot = ids
                .iter()
                .position(|&want| want == id)
                .ok_or_else(|| ClientError::Protocol(format!("reply for unknown id {id}")))?;
            if slots[slot].replace(outcome).is_some() {
                return Err(ClientError::Protocol(format!(
                    "duplicate reply for id {id}"
                )));
            }
            remaining -= 1;
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled when remaining hits zero"))
            .collect())
    }

    /// Fetches the server's metrics snapshot over the wire.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let id = self.allocate_id();
        match self.round_trip(&Request::Stats { id })? {
            Reply::Stats { id: got, stats } if got == id => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply for id {id}, got {other:?}"
            ))),
        }
    }

    /// Sends one query stamped with `trace_id` (obtain one from
    /// [`TraceSink::next_trace_id`](trajsearch_obs::TraceSink::next_trace_id)
    /// or any per-client unique nonzero source) and waits for its reply.
    /// Afterwards [`Client::trace`] with the same id fetches the server's
    /// per-phase spans; a coordinator forwards the id into every shard RPC,
    /// so the same id read from each shard server stitches the distributed
    /// timeline. Requires a minor ≥ 3 server (older ones reject the frame
    /// as malformed).
    pub fn query_traced(&mut self, query: &Query, trace_id: u64) -> Result<Response, ClientError> {
        let id = self.allocate_id();
        let reply = self.round_trip(&Request::Query {
            id,
            query: query.clone(),
            trace_id: Some(trace_id),
        })?;
        match reply {
            Reply::Response { id: got, response } if got == id => Ok(response),
            Reply::Degraded { degraded, .. } => Err(ClientError::Degraded(degraded)),
            Reply::Error { error, .. } => Err(ClientError::Server(error)),
            other => Err(ClientError::Protocol(format!(
                "expected response for id {id}, got {other:?}"
            ))),
        }
    }

    /// Fetches trace timelines. `Some(trace_id)` returns that trace's spans
    /// as retained by *this* server (one entry, or none when nothing
    /// survives); `None` returns the slow-query log (empty unless the
    /// server was configured with
    /// [`slow_query_threshold`](crate::ServerConfig::slow_query_threshold)).
    pub fn trace(&mut self, trace_id: Option<u64>) -> Result<Vec<TraceEntry>, ClientError> {
        let id = self.allocate_id();
        match self.round_trip(&Request::Trace { id, trace_id })? {
            Reply::Trace { id: got, entries } if got == id => Ok(entries),
            Reply::Error { error, .. } => Err(ClientError::Server(error)),
            other => Err(ClientError::Protocol(format!(
                "expected trace reply for id {id}, got {other:?}"
            ))),
        }
    }

    /// Fetches the Prometheus text exposition (`metrics_text` request).
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let id = self.allocate_id();
        match self.round_trip(&Request::MetricsText { id })? {
            Reply::MetricsText { id: got, text } if got == id => Ok(text),
            Reply::Error { error, .. } => Err(ClientError::Server(error)),
            other => Err(ClientError::Protocol(format!(
                "expected metrics_text reply for id {id}, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_is_overloaded_only() {
        let policy = RetryPolicy::new().max_attempts(3);
        assert!(policy.retries(&ServerError::new(ServerErrorKind::Overloaded, "")));
        for kind in [
            ServerErrorKind::DeadlineExceeded,
            ServerErrorKind::ShuttingDown,
            ServerErrorKind::InvalidQuery,
            ServerErrorKind::Malformed,
            ServerErrorKind::UnsupportedVersion,
            ServerErrorKind::EpochMismatch,
        ] {
            assert!(
                !policy.retries(&ServerError::new(kind, "")),
                "{kind:?} must not be retried"
            );
        }
        // The no-retry default refuses even overloaded.
        assert!(!RetryPolicy::default().retries(&ServerError::new(ServerErrorKind::Overloaded, "")));
    }

    #[test]
    fn retry_policy_clamps_attempts() {
        assert_eq!(RetryPolicy::new().max_attempts(0).attempts(), 1);
    }
}
