//! Synchronous client for the serve protocol, with pipelined batch
//! submission.
//!
//! [`Client::query`] is one request / one reply. [`Client::query_batch`]
//! pipelines a whole workload, keeping a bounded window of requests in
//! flight ahead of the replies it reads, and collects replies **by id** —
//! the server's workers finish out of order — returning them in
//! submission order. One TCP connection carries the
//! whole conversation; a transport failure is a [`ClientError`], while a
//! per-query server-side rejection (overload, deadline, invalid query) is
//! a typed [`ServerError`] *value* so a batch can mix successes and
//! rejections.

use crate::metrics::MetricsSnapshot;
use crate::proto::{read_frame, write_frame, Reply, Request, ServerError};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use trajsearch_core::{Query, Response};

/// A client-side failure. `Server` wraps the typed per-query error for the
/// single-query convenience APIs; transport and protocol failures poison
/// the connection (drop the client and reconnect).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server spoke something that is not the protocol (or closed
    /// mid-conversation).
    Protocol(String),
    /// The server answered with a typed error frame.
    Server(ServerError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Maximum requests in flight per connection during
/// [`Client::query_batch`]. Deep enough to keep every worker busy and
/// amortize flushes; bounded so the pipeline can never wedge both sockets'
/// buffers with unread frames.
const PIPELINE_WINDOW: usize = 64;

/// One connection to a serve front-end.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects (blocking, no read timeout: replies to admitted queries
    /// always arrive — the server's drain guarantee).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: BufWriter::new(stream),
            reader,
            next_id: 1,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Reply::from_json(&frame).map_err(ClientError::Protocol)
    }

    /// Sends one query and waits for its reply. A typed server-side
    /// rejection surfaces as [`ClientError::Server`].
    pub fn query(&mut self, query: &Query) -> Result<Response, ClientError> {
        let mut outcomes = self.query_batch(std::slice::from_ref(query))?;
        outcomes
            .pop()
            .expect("one outcome per submitted query")
            .map_err(ClientError::Server)
    }

    /// Pipelines the whole workload on this connection: request frames
    /// are written ahead of the replies being read — but never more than
    /// `PIPELINE_WINDOW` (64) ahead, so the client is always draining
    /// replies whenever the window is full. (Writing an unbounded batch before
    /// reading anything can deadlock once both sockets' kernel buffers
    /// fill: the server blocks writing replies nobody reads, the client
    /// blocks writing requests nobody accepts.) Replies are collected by
    /// id and returned in submission order. Per-query outcomes are
    /// independent — one query's overload/deadline rejection does not fail
    /// its neighbors.
    pub fn query_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<Result<Response, ServerError>>, ClientError> {
        let ids: Vec<u64> = queries.iter().map(|_| self.fresh_id()).collect();

        let mut slots: Vec<Option<Result<Response, ServerError>>> = vec![None; queries.len()];
        let mut sent = 0usize;
        let mut remaining = queries.len();
        while remaining > 0 {
            // Top the window up, then flush once for the burst.
            if sent < queries.len() && sent - (queries.len() - remaining) < PIPELINE_WINDOW {
                while sent < queries.len() && sent - (queries.len() - remaining) < PIPELINE_WINDOW {
                    let frame = Request::Query {
                        id: ids[sent],
                        query: queries[sent].clone(),
                    }
                    .to_json();
                    write_frame(&mut self.writer, &frame)?;
                    sent += 1;
                }
                self.writer.flush()?;
            }
            let reply = self.read_reply()?;
            let (id, outcome) = match reply {
                Reply::Response { id, response } => (id, Ok(response)),
                Reply::Error {
                    id: Some(id),
                    error,
                } => (id, Err(error)),
                Reply::Error { id: None, error } => {
                    // The server could not attribute the failure to a
                    // request — the conversation is broken.
                    return Err(ClientError::Protocol(format!(
                        "unattributed server error: {error}"
                    )));
                }
                Reply::Stats { .. } => {
                    return Err(ClientError::Protocol(
                        "unexpected stats reply during a query batch".into(),
                    ));
                }
            };
            let slot = ids
                .iter()
                .position(|&want| want == id)
                .ok_or_else(|| ClientError::Protocol(format!("reply for unknown id {id}")))?;
            if slots[slot].replace(outcome).is_some() {
                return Err(ClientError::Protocol(format!(
                    "duplicate reply for id {id}"
                )));
            }
            remaining -= 1;
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled when remaining hits zero"))
            .collect())
    }

    /// Fetches the server's metrics snapshot over the wire.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let id = self.fresh_id();
        let frame = Request::Stats { id }.to_json();
        write_frame(&mut self.writer, &frame)?;
        self.writer.flush()?;
        match self.read_reply()? {
            Reply::Stats { id: got, stats } if got == id => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply for id {id}, got {other:?}"
            ))),
        }
    }
}
