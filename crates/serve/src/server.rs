//! The server: one acceptor thread, one reader thread per connection, and a
//! bounded worker pool — all `std` scoped threads, no async runtime.
//!
//! ```text
//!           accept()            try_push (bounded)          pop_timeout
//! clients ──────────▶ readers ───────────────────▶ queue ──────────────▶ workers
//!    ▲                  │  overloaded / malformed /           │ deadline check at
//!    │                  ▼  shutting-down replies              ▼ dequeue, then
//!    └───────────── shared per-connection writer ◀── engine.run_with_deadline
//! ```
//!
//! Design points, mirroring the batch engine's scheduling:
//!
//! * **Backpressure, never unbounded memory** — admission is
//!   [`BoundedQueue::try_push`]; a full queue is a typed `overloaded`
//!   reply, and per-frame size is capped by
//!   [`crate::proto::MAX_FRAME_BYTES`].
//! * **Deadlines start at admission** — the reader stamps arrival; workers
//!   re-check at dequeue (a query that aged out while queued is answered
//!   `deadline_exceeded` without touching the engine) and the engine checks
//!   cooperatively between verification groups
//!   ([`trajsearch_core::deadline`]).
//! * **Graceful drain** — [`ServerHandle::shutdown`] closes admission
//!   (readers answer `shutting_down`), workers finish every query already
//!   admitted and write its reply, then [`Server::serve`] returns a final
//!   [`MetricsSnapshot`]. In-flight queries are never dropped.
//! * **Scoped threads** — `serve` borrows the engine (and through it the
//!   trajectory store), so serving needs no `'static` gymnastics and no
//!   `Arc` over the dataset.

use crate::metrics::{Metrics, MetricsSnapshot, SAMPLE_CAP};
use crate::proto::{
    write_frame, DegradedInfo, Reply, Request, ServerError, ServerErrorKind, TraceEntry, WireSpan,
    MAX_FRAME_BYTES, PROTO_MAJOR, PROTO_MINOR,
};
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::shard::{answer_shard_rpc, RpcDisposition, ShardSource};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use trajsearch_core::{Deadline, PostingSource, Query, QueryError, Response, SearchEngine};
use trajsearch_obs::{LogHistogram, PromText, TraceSink, Tracer};
use wed::WedInstance;

/// How a [`QueryHandler`] answered one query — the server maps each arm
/// onto the corresponding wire reply.
#[derive(Debug)]
pub enum Handled {
    /// A complete answer.
    Response(Response),
    /// The query ran but shards were missing; becomes a typed `degraded`
    /// reply (optionally carrying the partial answer).
    Degraded {
        degraded: DegradedInfo,
        response: Option<Response>,
    },
    /// The query was not answered (validation, deadline, …); becomes a
    /// typed `error` reply.
    Rejected(QueryError),
}

/// What [`Server::serve`] serves: anything that can answer a [`Query`]
/// under a [`Deadline`]. [`SearchEngine`] implements it directly (the
/// single-process server), and `trajsearch-distrib`'s coordinator
/// implements it over [`RemoteShards`-backed
/// engines](trajsearch_core::PostingSource) to add degraded-reply
/// tracking. Handlers run concurrently on the worker pool, hence `Sync`.
pub trait QueryHandler: Sync {
    fn handle(&self, query: &Query, deadline: Deadline) -> Handled;

    /// As [`handle`](QueryHandler::handle), but with a [`Tracer`] for
    /// per-phase span recording. The server calls this entry point for
    /// every query; the default ignores the tracer, so untraced handlers
    /// need not change. Handlers that can attribute time to phases (the
    /// engine, the distributed coordinator) override it.
    fn handle_traced(&self, query: &Query, deadline: Deadline, tracer: Tracer<'_>) -> Handled {
        let _ = tracer;
        self.handle(query, deadline)
    }
}

impl<M, I> QueryHandler for SearchEngine<'_, M, I>
where
    M: WedInstance + Sync,
    I: PostingSource + Sync,
{
    fn handle(&self, query: &Query, deadline: Deadline) -> Handled {
        self.handle_traced(query, deadline, Tracer::disabled())
    }

    fn handle_traced(&self, query: &Query, deadline: Deadline, tracer: Tracer<'_>) -> Handled {
        match self.run_with_deadline_traced(query, deadline, tracer) {
            Ok(response) => Handled::Response(response),
            Err(e) => Handled::Rejected(e),
        }
    }
}

/// Server configuration; the [`Default`] is a loopback server on an
/// ephemeral port sized to the host.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address. Port 0 picks an ephemeral port — read the real one
    /// from [`Server::local_addr`].
    pub addr: SocketAddr,
    /// Worker pool size (`0` means [`std::thread::available_parallelism`]).
    pub workers: usize,
    /// Admission queue bound. `0` is legal and rejects every query with
    /// `overloaded` — useful for drills and tests.
    pub queue_capacity: usize,
    /// Poll granularity for shutdown checks (reader read timeouts and
    /// worker pop timeouts). Bounds how long shutdown can lag.
    pub poll_interval: Duration,
    /// Advertise [`SUPPORTED_METRICS`](crate::proto::SUPPORTED_METRICS) on
    /// the hello reply (default). `false` sends the pre-minor-2 hello
    /// (no `metrics` key) — kept for tests simulating an old server.
    pub advertise_metrics: bool,
    /// Rolling window size for the queue/wall/cpu latency series behind
    /// `stats` percentiles (see [`crate::metrics::SAMPLE_CAP`], the
    /// default). `0` is clamped to 1.
    pub sample_cap: usize,
    /// Queries whose wall time reaches this threshold are captured — spans
    /// and all — in the slow-query log readable via the `trace` wire
    /// request. `None` (default) disables the log; with it armed, every
    /// query is traced (into the bounded sink) even when the client sent no
    /// `trace_id`.
    pub slow_query_threshold: Option<Duration>,
    /// How many slow-query captures the log retains (oldest evicted first).
    pub slow_log_capacity: usize,
    /// Span sink shared by tracing and the slow-query log. `None` (default)
    /// lets the server allocate a private sink; pass a shared
    /// [`TraceSink`] to read spans out-of-band or to share one ring across
    /// co-located servers.
    pub sink: Option<Arc<TraceSink>>,
}

/// Span capacity of the sink [`Server::bind`] allocates when
/// [`ServerConfig::sink`] is `None`.
pub const DEFAULT_SINK_SPANS: usize = 16 * 1024;

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 0,
            queue_capacity: 1024,
            poll_interval: Duration::from_millis(20),
            advertise_metrics: true,
            sample_cap: SAMPLE_CAP,
            slow_query_threshold: None,
            slow_log_capacity: 32,
            sink: None,
        }
    }
}

impl ServerConfig {
    fn resolve_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One admitted query waiting for (or held by) a worker.
struct Job {
    id: u64,
    query: Query,
    /// Admission time — the deadline epoch, so queueing counts against the
    /// budget.
    accepted_at: Instant,
    /// The wire frame's `trace_id`, if the client asked for tracing.
    trace_id: Option<u64>,
    writer: Arc<Mutex<TcpStream>>,
}

/// Per-phase latency histograms backing the `metrics_text` exposition —
/// fixed log2 buckets ([`LogHistogram`]), lock-free to record.
struct PhaseHistograms {
    /// Admission → dequeue, per dequeued query.
    queue: LogHistogram,
    /// Dequeue → reply written, per completed query.
    wall: LogHistogram,
    /// Engine phase times per completed query, from [`Response`] stats.
    mincand: LogHistogram,
    lookup: LogHistogram,
    verify: LogHistogram,
}

impl PhaseHistograms {
    fn new() -> PhaseHistograms {
        PhaseHistograms {
            queue: LogHistogram::new(),
            wall: LogHistogram::new(),
            mincand: LogHistogram::new(),
            lookup: LogHistogram::new(),
            verify: LogHistogram::new(),
        }
    }
}

/// Last-N ring of slow-query captures (threshold-armed via
/// [`ServerConfig::slow_query_threshold`]).
struct SlowLog {
    threshold_ns: u64,
    capacity: usize,
    entries: Mutex<VecDeque<TraceEntry>>,
}

/// State shared between acceptor, readers, workers and handles.
struct Shared {
    shutdown: AtomicBool,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    workers: usize,
    advertise_metrics: bool,
    sink: Arc<TraceSink>,
    phases: PhaseHistograms,
    slow: Option<SlowLog>,
    /// Queries that crossed the slow-query threshold (counter for the
    /// exposition surface; the log itself holds only the last N).
    slow_queries: AtomicU64,
}

/// A bound-but-not-yet-serving server. [`Server::serve`] blocks the calling
/// thread; grab a [`ServerHandle`] first for shutdown and metrics.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    poll_interval: Duration,
}

/// Clonable remote control for a serving [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (with the real port when the config used 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown: admission closes immediately, queued
    /// and in-flight queries drain to completion, then
    /// [`Server::serve`] returns. Idempotent; returns without waiting for
    /// the drain (join the thread running `serve` to wait).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue.close();
        // Wake the acceptor out of `accept()` with a throwaway connection;
        // if connect fails the listener is already gone, which is fine.
        let _ = TcpStream::connect(self.addr);
    }

    /// Live metrics snapshot, no round trip needed.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(
            self.shared.queue.len(),
            self.shared.queue.capacity(),
            self.shared.workers,
        )
    }

    /// The server's span sink — the one from [`ServerConfig::sink`], or the
    /// privately allocated one. Read spans out-of-band with
    /// [`TraceSink::spans_for`].
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        Arc::clone(&self.shared.sink)
    }

    /// The Prometheus text exposition, identical to the `metrics_text` wire
    /// reply, no round trip needed.
    pub fn metrics_text(&self) -> String {
        render_metrics_text(&self.shared)
    }
}

impl Server {
    /// Binds the listener. The server is not yet accepting — call
    /// [`serve`](Server::serve).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.resolve_workers();
        let sink = config
            .sink
            .unwrap_or_else(|| Arc::new(TraceSink::new(DEFAULT_SINK_SPANS)));
        let slow = config.slow_query_threshold.map(|threshold| SlowLog {
            threshold_ns: u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
            capacity: config.slow_log_capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        });
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                queue: BoundedQueue::new(config.queue_capacity),
                metrics: Metrics::with_sample_cap(config.sample_cap),
                workers,
                advertise_metrics: config.advertise_metrics,
                sink,
                phases: PhaseHistograms::new(),
                slow,
                slow_queries: AtomicU64::new(0),
            }),
            poll_interval: config.poll_interval,
        })
    }

    /// Binds to `addr` with otherwise-default configuration.
    pub fn bind_addr(addr: impl ToSocketAddrs) -> io::Result<Server> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Server::bind(ServerConfig {
            addr,
            ..ServerConfig::default()
        })
    }

    /// The bound address (with the real port when the config used 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The remote control; clone freely across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves queries until [`ServerHandle::shutdown`]. The handler is
    /// usually a [`SearchEngine`] (which implements [`QueryHandler`]
    /// directly); a distributed coordinator passes its own handler to add
    /// degraded-reply tracking. Blocks the calling thread (spawn it inside
    /// [`std::thread::scope`] to keep borrowing the engine); returns the
    /// final metrics snapshot once every admitted query has been answered
    /// and all threads have joined.
    pub fn serve<H: QueryHandler>(self, handler: &H) -> io::Result<MetricsSnapshot> {
        self.serve_role(&QueryRole { handler })
    }

    /// Serves shard RPCs (`shard_info`, `shard_freqs`, …) from `source`
    /// until shutdown — the *shard-server role*. RPCs are answered inline
    /// on reader threads (no worker pool: every RPC is a bounded slice
    /// lookup); `query` frames get a typed `invalid_query` pointing the
    /// client at a coordinator.
    pub fn serve_shard<S: ShardSource>(self, source: &S) -> io::Result<MetricsSnapshot> {
        self.serve_role(&ShardRole { source })
    }

    fn serve_role<R: Role>(self, role: &R) -> io::Result<MetricsSnapshot> {
        let Server {
            listener,
            addr,
            shared,
            poll_interval: poll,
        } = self;
        let handle = ServerHandle {
            addr,
            shared: Arc::clone(&shared),
        };
        let shared = &*handle.shared;
        let accept_result = std::thread::scope(|scope| {
            role.spawn_pool(scope, shared, poll);
            // Transient accept() failures must not kill a long-running
            // server: ECONNABORTED/ECONNRESET mean one *client* vanished
            // mid-handshake (accept(2) documents these as retryable), and
            // resource exhaustion (EMFILE/ENFILE) clears when connections
            // close. Only a persistent failure streak is listener death.
            let mut consecutive_errors = 0u32;
            const MAX_CONSECUTIVE_ACCEPT_ERRORS: u32 = 16;
            let accept_result = loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        consecutive_errors = 0;
                        if shared.shutdown.load(Ordering::SeqCst) {
                            // The shutdown wake-up connection (or a client
                            // racing it) — drop it and stop accepting.
                            break Ok(());
                        }
                        // Replies are small frames answered immediately;
                        // Nagle + the peer's delayed ACK would add ~40ms to
                        // every request/reply round trip without this.
                        stream.set_nodelay(true).ok();
                        scope.spawn(move || connection_loop(stream, shared, poll, role));
                    }
                    Err(_) if shared.shutdown.load(Ordering::SeqCst) => break Ok(()),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted
                                | io::ErrorKind::ConnectionAborted
                                | io::ErrorKind::ConnectionReset
                        ) =>
                    {
                        continue
                    }
                    Err(e) => {
                        consecutive_errors += 1;
                        if consecutive_errors < MAX_CONSECUTIVE_ACCEPT_ERRORS {
                            // Likely fd exhaustion or another transient
                            // condition: back off one poll tick and retry.
                            std::thread::sleep(poll);
                            continue;
                        }
                        // Listener is persistently broken: fail, but still
                        // drain what was admitted so no client hangs.
                        shared.shutdown.store(true, Ordering::SeqCst);
                        shared.queue.close();
                        break Err(e);
                    }
                }
            };
            drop(listener);
            accept_result
            // Scope join: readers exit on their next poll tick (shutdown
            // flag), workers after Pop::Drained — the graceful drain.
        });
        accept_result?;
        Ok(handle.metrics())
    }
}

/// A server personality: what runs alongside the acceptor, and how frames
/// other than the common `stats`/`hello` are answered.
trait Role: Sync {
    /// Spawns any pool threads (the query role's workers) inside the serve
    /// scope; the shard role spawns nothing.
    fn spawn_pool<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        shared: &'env Shared,
        poll: Duration,
    );

    /// Handles one decoded request. `arrived` is the frame's read-off-the-
    /// socket time — the deadline epoch for whatever budget it carries.
    fn dispatch(
        &self,
        request: Request,
        arrived: Instant,
        shared: &Shared,
        writer: &Arc<Mutex<TcpStream>>,
    );
}

/// The query-serving personality (PR 5): queries go through the bounded
/// admission queue to the worker pool; shard RPCs are refused.
struct QueryRole<'h, H: QueryHandler> {
    handler: &'h H,
}

impl<H: QueryHandler> Role for QueryRole<'_, H> {
    fn spawn_pool<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        shared: &'env Shared,
        poll: Duration,
    ) {
        for _ in 0..shared.workers {
            let handler = self.handler;
            scope.spawn(move || worker_loop(shared, handler, poll));
        }
    }

    fn dispatch(
        &self,
        request: Request,
        arrived: Instant,
        shared: &Shared,
        writer: &Arc<Mutex<TcpStream>>,
    ) {
        let Request::Query {
            id,
            query,
            trace_id,
        } = request
        else {
            Metrics::bump(&shared.metrics.invalid);
            send_reply(
                writer,
                &Reply::Error {
                    id: Some(request.id()),
                    error: ServerError::new(
                        ServerErrorKind::InvalidQuery,
                        "shard RPCs are answered by shard servers, not query servers",
                    ),
                },
            );
            return;
        };
        let job = Job {
            id,
            query,
            accepted_at: arrived,
            trace_id,
            writer: Arc::clone(writer),
        };
        match shared.queue.try_push(job) {
            Ok(()) => Metrics::bump(&shared.metrics.admitted),
            Err(PushError::Full(job)) => {
                Metrics::bump(&shared.metrics.rejected_overload);
                send_reply(
                    writer,
                    &Reply::Error {
                        id: Some(job.id),
                        error: ServerError::new(
                            ServerErrorKind::Overloaded,
                            format!(
                                "admission queue full (capacity {})",
                                shared.queue.capacity()
                            ),
                        ),
                    },
                );
            }
            Err(PushError::Closed(job)) => {
                Metrics::bump(&shared.metrics.rejected_shutdown);
                send_reply(
                    writer,
                    &Reply::Error {
                        id: Some(job.id),
                        error: ServerError::new(
                            ServerErrorKind::ShuttingDown,
                            "server is draining; no new queries admitted",
                        ),
                    },
                );
            }
        }
    }
}

/// The shard-serving personality: shard RPCs answered inline on reader
/// threads; queries are refused.
struct ShardRole<'s, S: ShardSource> {
    source: &'s S,
}

impl<S: ShardSource> Role for ShardRole<'_, S> {
    fn spawn_pool<'scope, 'env>(
        &'env self,
        _scope: &'scope std::thread::Scope<'scope, 'env>,
        _shared: &'env Shared,
        _poll: Duration,
    ) {
    }

    fn dispatch(
        &self,
        request: Request,
        arrived: Instant,
        shared: &Shared,
        writer: &Arc<Mutex<TcpStream>>,
    ) {
        if let Request::Query { id, .. } = &request {
            Metrics::bump(&shared.metrics.invalid);
            send_reply(
                writer,
                &Reply::Error {
                    id: Some(*id),
                    error: ServerError::new(
                        ServerErrorKind::InvalidQuery,
                        "this is a shard server; send queries to a coordinator",
                    ),
                },
            );
            return;
        }
        // A coordinator-stamped trace id yields a serve-side span so the
        // stitched timeline shows time inside the shard server (vs the
        // coordinator's own `shard_rpc` span, which includes the network).
        let trace_id = request.trace_id().unwrap_or(0);
        let rpc_id = request.id();
        let (reply, disposition) = answer_shard_rpc(self.source, request, arrived);
        if trace_id != 0 {
            shared
                .sink
                .record_interval(trace_id, 0, "rpc_serve", rpc_id, arrived, Instant::now());
        }
        Metrics::bump(match disposition {
            RpcDisposition::Ok => &shared.metrics.completed,
            RpcDisposition::TimedOut => &shared.metrics.timed_out,
            RpcDisposition::Invalid => &shared.metrics.invalid,
        });
        send_reply(writer, &reply);
    }
}

/// Writes one reply frame on a connection's shared writer. A send failure
/// means the client vanished; the query's work is simply discarded.
fn send_reply(writer: &Mutex<TcpStream>, reply: &Reply) {
    let json = reply.to_json();
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = write_frame(&mut *w, &json).and_then(|()| w.flush());
}

/// Per-connection reader: splits frames, answers `stats`/`hello` and
/// protocol errors inline, hands everything else to the role.
fn connection_loop<R: Role>(stream: TcpStream, shared: &Shared, poll: Duration, role: &R) {
    // Read timeouts turn the blocking reader into a shutdown-aware poller.
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain complete frames from the accumulator first.
        while let Some(nl) = acc.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = acc.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&frame[..frame.len() - 1]).into_owned();
            handle_frame(&text, shared, &writer, role);
        }
        if acc.len() > MAX_FRAME_BYTES {
            Metrics::bump(&shared.metrics.malformed);
            send_reply(
                &writer,
                &Reply::Error {
                    id: None,
                    error: ServerError::new(
                        ServerErrorKind::Malformed,
                        "frame exceeds MAX_FRAME_BYTES",
                    ),
                },
            );
            return; // close the connection: framing is unrecoverable
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Stop reading new requests. Replies for this connection's
            // in-flight queries are written by workers through `writer`,
            // which stays alive inside their jobs until drained.
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: loop re-checks shutdown
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn handle_frame<R: Role>(text: &str, shared: &Shared, writer: &Arc<Mutex<TcpStream>>, role: &R) {
    if text.trim().is_empty() {
        return; // tolerate blank keep-alive lines
    }
    let arrived = Instant::now();
    let request = match Request::from_json(text) {
        Ok(request) => request,
        Err((id, error)) => {
            Metrics::bump(if error.kind == ServerErrorKind::InvalidQuery {
                &shared.metrics.invalid
            } else {
                &shared.metrics.malformed
            });
            send_reply(writer, &Reply::Error { id, error });
            return;
        }
    };
    // stats, hello, trace and metrics_text are role-independent and
    // answered inline (shard servers expose their spans and metrics too —
    // cross-process stitching reads each process's `trace` surface).
    match request {
        Request::Trace { id, trace_id } => {
            let entries = match trace_id {
                Some(t) => trace_entries_for(shared, t),
                None => slow_log_entries(shared),
            };
            send_reply(writer, &Reply::Trace { id, entries });
        }
        Request::MetricsText { id } => {
            let text = render_metrics_text(shared);
            send_reply(writer, &Reply::MetricsText { id, text });
        }
        Request::Stats { id } => {
            let stats = shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.workers,
            );
            send_reply(writer, &Reply::Stats { id, stats });
        }
        Request::Hello { id, major, .. } => {
            if major == PROTO_MAJOR {
                let metrics = if shared.advertise_metrics {
                    crate::proto::SUPPORTED_METRICS
                        .iter()
                        .map(|m| m.to_string())
                        .collect()
                } else {
                    Vec::new()
                };
                send_reply(
                    writer,
                    &Reply::Hello {
                        id,
                        major: PROTO_MAJOR,
                        minor: PROTO_MINOR,
                        metrics,
                    },
                );
            } else {
                Metrics::bump(&shared.metrics.malformed);
                send_reply(
                    writer,
                    &Reply::Error {
                        id: Some(id),
                        error: ServerError::new(
                            ServerErrorKind::UnsupportedVersion,
                            format!(
                                "client speaks major {major}; this server speaks {PROTO_MAJOR}"
                            ),
                        ),
                    },
                );
            }
        }
        other => role.dispatch(other, arrived, shared, writer),
    }
}

/// Worker: claim → dequeue-time deadline check → handler (with cooperative
/// checkpoints) → reply.
fn worker_loop<H: QueryHandler>(shared: &Shared, handler: &H, poll: Duration) {
    loop {
        match shared.queue.pop_timeout(poll) {
            Pop::Item(job) => process(job, shared, handler),
            Pop::Empty => continue,
            Pop::Drained => return,
        }
    }
}

fn process<H: QueryHandler>(job: Job, shared: &Shared, handler: &H) {
    let deadline = Deadline::for_query(job.accepted_at, job.query.deadline_ms());
    let dequeued = Instant::now();
    let queue_ns =
        u64::try_from(dequeued.duration_since(job.accepted_at).as_nanos()).unwrap_or(u64::MAX);
    shared.metrics.record_queue_wait(queue_ns);
    shared.phases.queue.record(queue_ns);
    // Dequeue-time check: a query that aged out while queued is answered
    // without paying for any engine work.
    if deadline.expired() {
        Metrics::bump(&shared.metrics.timed_out);
        send_reply(
            &job.writer,
            &Reply::Error {
                id: Some(job.id),
                error: ServerError::new(
                    ServerErrorKind::DeadlineExceeded,
                    "deadline expired while queued",
                ),
            },
        );
        return;
    }
    // Wire-traced queries record under the client's id; an armed slow-query
    // log traces everything else under a server-allocated id so a capture
    // has spans to show. Untraced otherwise (trace id 0 disables recording).
    let trace_id = match job.trace_id {
        Some(t) => t,
        None if shared.slow.is_some() => shared.sink.next_trace_id(),
        None => 0,
    };
    let tracer = shared.sink.tracer(trace_id);
    if tracer.enabled() {
        shared
            .sink
            .record_interval(trace_id, 0, "queue_wait", 0, job.accepted_at, dequeued);
    }
    let t0 = Instant::now();
    match handler.handle_traced(&job.query, deadline, tracer) {
        Handled::Response(response) => {
            let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let cpu_ns = u64::try_from(response.stats.total_time().as_nanos()).unwrap_or(u64::MAX);
            shared.metrics.record_latency(wall_ns, cpu_ns);
            record_phase_histograms(shared, wall_ns, &response);
            maybe_capture_slow(shared, trace_id, job.id, wall_ns);
            Metrics::bump(&shared.metrics.completed);
            send_reply(
                &job.writer,
                &Reply::Response {
                    id: job.id,
                    response,
                },
            );
        }
        Handled::Degraded { degraded, response } => {
            Metrics::bump(&shared.metrics.degraded);
            send_reply(
                &job.writer,
                &Reply::Degraded {
                    id: job.id,
                    degraded,
                    response,
                },
            );
        }
        Handled::Rejected(QueryError::DeadlineExceeded) => {
            Metrics::bump(&shared.metrics.timed_out);
            send_reply(
                &job.writer,
                &Reply::Error {
                    id: Some(job.id),
                    error: ServerError::new(
                        ServerErrorKind::DeadlineExceeded,
                        "deadline expired during execution",
                    ),
                },
            );
        }
        Handled::Rejected(e) => {
            Metrics::bump(&shared.metrics.invalid);
            send_reply(
                &job.writer,
                &Reply::Error {
                    id: Some(job.id),
                    error: ServerError::new(ServerErrorKind::InvalidQuery, e.to_string()),
                },
            );
        }
    }
}

fn record_phase_histograms(shared: &Shared, wall_ns: u64, response: &Response) {
    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    shared.phases.wall.record(wall_ns);
    shared
        .phases
        .mincand
        .record(ns(response.stats.mincand_time));
    shared.phases.lookup.record(ns(response.stats.lookup_time));
    shared.phases.verify.record(ns(response.stats.verify_time));
}

/// Captures a completed query into the slow-query log when its wall time
/// crossed the threshold. The capture snapshots the trace's retained spans
/// immediately, so later sink evictions can't hollow out a log entry.
fn maybe_capture_slow(shared: &Shared, trace_id: u64, query_id: u64, wall_ns: u64) {
    let Some(slow) = &shared.slow else { return };
    if wall_ns < slow.threshold_ns || trace_id == 0 {
        return;
    }
    shared.slow_queries.fetch_add(1, Ordering::Relaxed);
    let entry = TraceEntry {
        trace_id,
        query_id: Some(query_id),
        wall_ns,
        spans: wire_spans(&shared.sink.spans_for(trace_id)),
    };
    let mut entries = slow.entries.lock().expect("slow log poisoned");
    if entries.len() == slow.capacity {
        entries.pop_front();
    }
    entries.push_back(entry);
}

fn wire_spans(spans: &[trajsearch_obs::SpanRecord]) -> Vec<WireSpan> {
    spans
        .iter()
        .map(|s| WireSpan {
            span_id: s.span_id,
            parent_id: s.parent_id,
            name: s.name.to_string(),
            detail: s.detail,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
        })
        .collect()
}

/// Answers `trace` with an explicit id: this process's retained spans for
/// that trace (empty `entries` when none survive — evicted or never
/// recorded here).
fn trace_entries_for(shared: &Shared, trace_id: u64) -> Vec<TraceEntry> {
    let spans = shared.sink.spans_for(trace_id);
    if spans.is_empty() {
        return Vec::new();
    }
    let start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end = spans.iter().map(|s| s.end_ns()).max().unwrap_or(start);
    vec![TraceEntry {
        trace_id,
        query_id: None,
        wall_ns: end.saturating_sub(start),
        spans: wire_spans(&spans),
    }]
}

/// Answers `trace` without an id: the slow-query log, oldest first.
fn slow_log_entries(shared: &Shared) -> Vec<TraceEntry> {
    match &shared.slow {
        Some(slow) => slow
            .entries
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect(),
        None => Vec::new(),
    }
}

/// Renders the Prometheus text exposition: every admission counter, queue
/// gauges, trace-sink counters, and the per-phase log2 histograms.
fn render_metrics_text(shared: &Shared) -> String {
    let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let m = &shared.metrics;
    let mut p = PromText::new();
    p.counter(
        "trajsearch_queries_admitted_total",
        "Queries accepted into the admission queue",
        c(&m.admitted),
    );
    p.counter(
        "trajsearch_queries_completed_total",
        "Queries answered with a full response",
        c(&m.completed),
    );
    p.counter(
        "trajsearch_queries_degraded_total",
        "Queries answered degraded (missing shards)",
        c(&m.degraded),
    );
    p.counter(
        "trajsearch_queries_timed_out_total",
        "Queries that exceeded their deadline",
        c(&m.timed_out),
    );
    p.counter(
        "trajsearch_queries_rejected_overload_total",
        "Queries refused because the admission queue was full",
        c(&m.rejected_overload),
    );
    p.counter(
        "trajsearch_queries_rejected_shutdown_total",
        "Queries refused during graceful drain",
        c(&m.rejected_shutdown),
    );
    p.counter(
        "trajsearch_requests_invalid_total",
        "Frames rejected as invalid queries",
        c(&m.invalid),
    );
    p.counter(
        "trajsearch_requests_malformed_total",
        "Frames rejected as malformed",
        c(&m.malformed),
    );
    p.counter(
        "trajsearch_slow_queries_total",
        "Queries that crossed the slow-query threshold",
        shared.slow_queries.load(Ordering::Relaxed),
    );
    p.counter(
        "trajsearch_trace_spans_recorded_total",
        "Spans recorded into the trace sink",
        shared.sink.recorded(),
    );
    p.counter(
        "trajsearch_trace_spans_evicted_total",
        "Spans overwritten in the bounded trace sink",
        shared.sink.evicted(),
    );
    p.gauge(
        "trajsearch_queue_depth",
        "Queries currently waiting in the admission queue",
        shared.queue.len() as f64,
    );
    p.gauge(
        "trajsearch_queue_capacity",
        "Admission queue bound",
        shared.queue.capacity() as f64,
    );
    p.gauge(
        "trajsearch_workers",
        "Worker pool size",
        shared.workers as f64,
    );
    p.histogram(
        "trajsearch_queue_wait_ns",
        "Admission to dequeue, nanoseconds",
        &shared.phases.queue.snapshot(),
    );
    p.histogram(
        "trajsearch_query_wall_ns",
        "Dequeue to reply, nanoseconds",
        &shared.phases.wall.snapshot(),
    );
    p.histogram(
        "trajsearch_phase_mincand_ns",
        "mincandidate filter phase, nanoseconds",
        &shared.phases.mincand.snapshot(),
    );
    p.histogram(
        "trajsearch_phase_lookup_ns",
        "Posting-list lookup phase, nanoseconds",
        &shared.phases.lookup.snapshot(),
    );
    p.histogram(
        "trajsearch_phase_verify_ns",
        "Verification phase, nanoseconds",
        &shared.phases.verify.snapshot(),
    );
    p.render()
}
