//! Per-server metrics: admission counters and latency percentiles,
//! exposed live through [`ServerHandle::metrics`](crate::ServerHandle::metrics)
//! and over the wire via the `stats` request.
//!
//! Counters are lock-free atomics bumped on the hot path. Latencies go into
//! a fixed-size ring of the most recent [`SAMPLE_CAP`] queries (bounded
//! memory under unbounded traffic, recency-weighted percentiles — the
//! usual dashboard trade-off; the window is configurable via
//! [`ServerConfig::sample_cap`](crate::ServerConfig::sample_cap)). Three
//! series are kept per query: **queue** time (admission → dequeue, what
//! backpressure costs the client), **wall** time (dequeue → reply written)
//! and **CPU** time (the engine's summed phase time from
//! [`SearchStats::total_time`](trajsearch_core::SearchStats)), whose gap
//! against wall measures in-query parallelism and scheduling overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use trajsearch_core::json::JsonValue;

/// Default ring capacity for each latency series.
pub const SAMPLE_CAP: usize = 4096;

/// Fixed-size ring of the most recent samples.
struct Ring {
    samples: Vec<u64>,
    cap: usize,
    next: usize,
    seen: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            samples: Vec::with_capacity(cap),
            cap,
            next: 0,
            seen: 0,
        }
    }

    fn push(&mut self, v: u64) {
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            self.samples[self.next] = v;
        }
        self.next = (self.next + 1) % self.cap;
        self.seen += 1;
    }

    #[cfg(test)]
    fn summary(&self) -> LatencySummary {
        summarize(self.samples.clone(), self.seen)
    }
}

/// Percentile math over an owned sample copy — runs **outside** any ring
/// lock, so a dashboard's `O(n log n)` sort never stalls the hot path's
/// [`Metrics::record_latency`]. Quantiles are nearest-rank: the
/// `ceil(q·n)`-th smallest sample, so p99 over 100 samples is the 99th —
/// not the rounded interpolation that collapsed p99 into p100 on small
/// windows.
fn summarize(mut samples: Vec<u64>, seen: u64) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    samples.sort_unstable();
    let at = |q: f64| {
        let rank = (q * samples.len() as f64).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    };
    LatencySummary {
        count: seen,
        p50_ns: at(0.50),
        p95_ns: at(0.95),
        p99_ns: at(0.99),
        max_ns: *samples.last().unwrap(),
    }
}

/// Percentiles over the retained window; `count` is total observations
/// (may exceed the window size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl LatencySummary {
    fn to_json_value(self) -> JsonValue {
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::num_u64(self.count)),
            ("p50_ns".into(), JsonValue::num_u64(self.p50_ns)),
            ("p95_ns".into(), JsonValue::num_u64(self.p95_ns)),
            ("p99_ns".into(), JsonValue::num_u64(self.p99_ns)),
            ("max_ns".into(), JsonValue::num_u64(self.max_ns)),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<LatencySummary, String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("latency summary needs u64 \"{key}\""))
        };
        Ok(LatencySummary {
            count: field("count")?,
            p50_ns: field("p50_ns")?,
            p95_ns: field("p95_ns")?,
            p99_ns: field("p99_ns")?,
            max_ns: field("max_ns")?,
        })
    }
}

/// Live server metrics; snapshot with [`Metrics::snapshot`].
pub struct Metrics {
    pub admitted: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub timed_out: AtomicU64,
    pub completed: AtomicU64,
    pub degraded: AtomicU64,
    pub invalid: AtomicU64,
    pub malformed: AtomicU64,
    sample_cap: usize,
    queue_ns: Mutex<Option<Ring>>,
    wall_ns: Mutex<Option<Ring>>,
    cpu_ns: Mutex<Option<Ring>>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::with_sample_cap(SAMPLE_CAP)
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Metrics whose latency rings retain the most recent `cap` samples
    /// each (clamped to at least 1); [`Metrics::new`] uses [`SAMPLE_CAP`].
    pub fn with_sample_cap(cap: usize) -> Metrics {
        Metrics {
            admitted: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            sample_cap: cap.max(1),
            queue_ns: Mutex::new(None),
            wall_ns: Mutex::new(None),
            cpu_ns: Mutex::new(None),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn push_sample(&self, series: &Mutex<Option<Ring>>, v: u64) {
        series
            .lock()
            .expect("metrics mutex poisoned")
            .get_or_insert_with(|| Ring::new(self.sample_cap))
            .push(v);
    }

    /// Records one completed query's wall and engine-CPU time.
    pub fn record_latency(&self, wall_ns: u64, cpu_ns: u64) {
        self.push_sample(&self.wall_ns, wall_ns);
        self.push_sample(&self.cpu_ns, cpu_ns);
    }

    /// Records one dequeued query's time spent waiting in the admission
    /// queue (admission → dequeue) — recorded for every dequeued query,
    /// including ones that then age out at the dequeue deadline check.
    pub fn record_queue_wait(&self, queue_ns: u64) {
        self.push_sample(&self.queue_ns, queue_ns);
    }

    /// Consistent-enough snapshot for dashboards (counters are relaxed;
    /// each series is internally consistent).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        workers: usize,
    ) -> MetricsSnapshot {
        // Copy each ring's raw samples under its lock, then sort and take
        // percentiles on the copy with the lock released: a `stats` request
        // summarizing a full window must not block concurrent
        // `record_latency` calls for the duration of a 4096-element sort.
        let ring_summary = |m: &Mutex<Option<Ring>>| {
            let raw = m
                .lock()
                .expect("metrics mutex poisoned")
                .as_ref()
                .map(|r| (r.samples.clone(), r.seen));
            match raw {
                Some((samples, seen)) => summarize(samples, seen),
                None => LatencySummary::default(),
            }
        };
        MetricsSnapshot {
            queue_depth,
            queue_capacity,
            workers,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            queue: ring_summary(&self.queue_ns),
            wall: ring_summary(&self.wall_ns),
            cpu: ring_summary(&self.cpu_ns),
        }
    }
}

/// A point-in-time copy of the server's metrics — what a `stats` request
/// returns over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries currently waiting for a worker.
    pub queue_depth: usize,
    /// The admission bound those queries sit under.
    pub queue_capacity: usize,
    /// Worker pool size.
    pub workers: usize,
    /// Queries accepted into the queue.
    pub admitted: u64,
    /// Queries rejected because the queue was full (backpressure).
    pub rejected_overload: u64,
    /// Queries rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Queries whose deadline expired (queued or mid-execution).
    pub timed_out: u64,
    /// Queries answered successfully.
    pub completed: u64,
    /// Queries answered with a typed `degraded` reply (shards missing; the
    /// coordinator role only — always 0 on single-process servers).
    pub degraded: u64,
    /// Queries failing engine admission (typed `invalid_query` replies).
    pub invalid: u64,
    /// Frames that were not well-formed requests.
    pub malformed: u64,
    /// Admission → dequeue queue-wait time of dequeued queries.
    pub queue: LatencySummary,
    /// Dequeue → reply-written wall time of completed queries.
    pub wall: LatencySummary,
    /// Engine CPU time (summed phases) of completed queries.
    pub cpu: LatencySummary,
}

impl MetricsSnapshot {
    pub(crate) fn to_json_value(self) -> JsonValue {
        JsonValue::Obj(vec![
            ("queue_depth".into(), JsonValue::num_usize(self.queue_depth)),
            (
                "queue_capacity".into(),
                JsonValue::num_usize(self.queue_capacity),
            ),
            ("workers".into(), JsonValue::num_usize(self.workers)),
            ("admitted".into(), JsonValue::num_u64(self.admitted)),
            (
                "rejected_overload".into(),
                JsonValue::num_u64(self.rejected_overload),
            ),
            (
                "rejected_shutdown".into(),
                JsonValue::num_u64(self.rejected_shutdown),
            ),
            ("timed_out".into(), JsonValue::num_u64(self.timed_out)),
            ("completed".into(), JsonValue::num_u64(self.completed)),
            ("degraded".into(), JsonValue::num_u64(self.degraded)),
            ("invalid".into(), JsonValue::num_u64(self.invalid)),
            ("malformed".into(), JsonValue::num_u64(self.malformed)),
            ("queue".into(), self.queue.to_json_value()),
            ("wall".into(), self.wall.to_json_value()),
            ("cpu".into(), self.cpu.to_json_value()),
        ])
    }

    pub(crate) fn from_json_value(v: &JsonValue) -> Result<MetricsSnapshot, String> {
        let u64_field = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("metrics snapshot needs u64 \"{key}\""))
        };
        let usize_field = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_usize())
                .ok_or_else(|| format!("metrics snapshot needs usize \"{key}\""))
        };
        Ok(MetricsSnapshot {
            queue_depth: usize_field("queue_depth")?,
            queue_capacity: usize_field("queue_capacity")?,
            workers: usize_field("workers")?,
            admitted: u64_field("admitted")?,
            rejected_overload: u64_field("rejected_overload")?,
            rejected_shutdown: u64_field("rejected_shutdown")?,
            timed_out: u64_field("timed_out")?,
            completed: u64_field("completed")?,
            // Absent on snapshots from pre-PR6 servers (minor-version
            // tolerance: added fields default rather than fail).
            degraded: v.get("degraded").and_then(|x| x.as_u64()).unwrap_or(0),
            invalid: u64_field("invalid")?,
            malformed: u64_field("malformed")?,
            // Absent on snapshots from pre-PR10 servers; defaults like
            // `degraded` above.
            queue: match v.get("queue") {
                Some(q) => LatencySummary::from_json_value(q)?,
                None => LatencySummary::default(),
            },
            wall: LatencySummary::from_json_value(
                v.get("wall").ok_or("metrics snapshot needs \"wall\"")?,
            )?,
            cpu: LatencySummary::from_json_value(
                v.get("cpu").ok_or("metrics snapshot needs \"cpu\"")?,
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_a_known_series() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record_latency(i * 1000, i * 10);
        }
        let s = m.snapshot(3, 64, 4);
        assert_eq!(s.wall.count, 100);
        // Nearest-rank over 100 samples {1000, …, 100000}: the
        // ceil(q·100)-th smallest. The old round((n−1)·q) interpolation
        // returned the 51st sample for p50 and the 100th for p99 —
        // collapsing p99 into the max on any 100-sample window.
        assert_eq!(s.wall.p50_ns, 50_000);
        assert_eq!(s.wall.p95_ns, 95_000);
        assert_eq!(s.wall.p99_ns, 99_000);
        assert_eq!(s.wall.max_ns, 100_000);
        assert_eq!(s.cpu.max_ns, 1000);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.queue_capacity, 64);
        assert_eq!(s.workers, 4);
    }

    #[test]
    fn nearest_rank_edge_cases() {
        // One sample answers every quantile.
        let one = summarize(vec![7], 1);
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
        // Two samples: p50 is the 1st (ceil(0.5·2) = 1), p99 the 2nd.
        let two = summarize(vec![3, 9], 2);
        assert_eq!((two.p50_ns, two.p99_ns), (3, 9));
    }

    #[test]
    fn queue_wait_series_is_independent() {
        let m = Metrics::new();
        m.record_queue_wait(2_000);
        m.record_queue_wait(4_000);
        let s = m.snapshot(0, 8, 1);
        assert_eq!(s.queue.count, 2);
        assert_eq!(s.queue.p50_ns, 2_000);
        assert_eq!(s.queue.max_ns, 4_000);
        // No completed query yet: the wall/cpu series stay empty.
        assert_eq!(s.wall, LatencySummary::default());
    }

    #[test]
    fn sample_cap_is_configurable() {
        let m = Metrics::with_sample_cap(8);
        for i in 1..=100u64 {
            m.record_latency(i, i);
        }
        let s = m.snapshot(0, 8, 1);
        assert_eq!(s.wall.count, 100);
        // Only the last 8 samples are retained, so the minimum is 93.
        assert_eq!(s.wall.p50_ns, 96);
        assert_eq!(s.wall.max_ns, 100);
        // Cap 0 clamps to 1 instead of dividing by zero.
        let tiny = Metrics::with_sample_cap(0);
        tiny.record_latency(5, 5);
        tiny.record_latency(9, 9);
        assert_eq!(tiny.snapshot(0, 8, 1).wall.p50_ns, 9);
    }

    #[test]
    fn ring_retains_only_the_recent_window() {
        let mut r = Ring::new(SAMPLE_CAP);
        for i in 0..(SAMPLE_CAP as u64 + 10) {
            r.push(i);
        }
        let s = r.summary();
        assert_eq!(s.count, SAMPLE_CAP as u64 + 10);
        // The 10 oldest samples were evicted, so the minimum retained is 10.
        assert_eq!(r.samples.len(), SAMPLE_CAP);
        assert!(r.samples.iter().all(|&v| v >= 10));
        assert_eq!(s.max_ns, SAMPLE_CAP as u64 + 9);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot(0, 8, 1);
        assert_eq!(s.wall, LatencySummary::default());
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn summary_does_not_block_concurrent_pushes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Regression: `snapshot` used to sort the 4096-sample window while
        // holding the ring mutex, stalling every concurrent
        // `record_latency`. With the sort moved outside the lock, pushers
        // and a snapshotting reader make progress together; this exercises
        // that interleaving (and would deadlock/stall under the old
        // lock-held sort with poisoning or re-entry bugs).
        let m = Arc::new(Metrics::new());
        for i in 0..SAMPLE_CAP as u64 {
            m.record_latency(i, i); // full window => maximal sort cost
        }
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let (m, stop) = (Arc::clone(&m), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut snaps = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let s = m.snapshot(0, 8, 1);
                    assert!(s.wall.count >= SAMPLE_CAP as u64);
                    snaps += 1;
                }
                snaps
            })
        };
        let pushers: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        m.record_latency(t * 10_000 + i, i);
                    }
                })
            })
            .collect();
        for p in pushers {
            p.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let snaps = reader.join().unwrap();
        assert!(snaps > 0, "reader never completed a snapshot");
        let s = m.snapshot(0, 8, 1);
        // Every push landed: total observations = warmup + 4 × 2000.
        assert_eq!(s.wall.count, SAMPLE_CAP as u64 + 8_000);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = Metrics::new();
        Metrics::bump(&m.admitted);
        Metrics::bump(&m.completed);
        Metrics::bump(&m.rejected_overload);
        m.record_latency(123_456, 98_765);
        m.record_queue_wait(2_222);
        let s = m.snapshot(1, 32, 2);
        let v = s.to_json_value();
        assert_eq!(MetricsSnapshot::from_json_value(&v).unwrap(), s);
        // A pre-queue-series snapshot (no "queue" key) still decodes.
        let legacy = match v {
            JsonValue::Obj(fields) => {
                JsonValue::Obj(fields.into_iter().filter(|(k, _)| k != "queue").collect())
            }
            other => other,
        };
        let back = MetricsSnapshot::from_json_value(&legacy).unwrap();
        assert_eq!(back.queue, LatencySummary::default());
        assert_eq!(back.wall, s.wall);
    }
}
