//! The shard-server role: answering the
//! [`PostingSource`](trajsearch_core::PostingSource) contract over the wire.
//!
//! A process holding one [`IndexShard`] runs
//! [`Server::serve_shard`](crate::Server::serve_shard) and answers the
//! `shard_*` RPCs from [`crate::proto`]. Shard RPCs are cheap slice
//! lookups, so they are answered **inline on the reader thread** — no
//! admission queue, no worker pool, replies stream back in request order
//! per connection (cross-connection parallelism comes from one reader per
//! connection).
//!
//! Two guards run before any data is touched:
//!
//! * **Epoch** — every data RPC echoes the epoch learned from
//!   `shard_info`; a mismatch is a typed `epoch_mismatch` error, so a
//!   coordinator can never silently mix postings from two index builds.
//! * **Deadline** — an RPC carrying `deadline_ms` whose budget elapsed
//!   before handling began (readers drain pipelined frames in order, so a
//!   backlog ages the later frames) is answered `deadline_exceeded`
//!   without touching the index.

use crate::proto::{
    Reply, Request, ServerError, ServerErrorKind, ShardInfo, SpanPage, SPAN_PAGE_MAX,
};
use std::time::{Duration, Instant};
use trajsearch_core::{IndexShard, Posting};
use wed::Sym;

/// What a shard server serves: the read-only, slice-returning half of the
/// `PostingSource` contract plus self-description. Implementations must be
/// total over hostile inputs — out-of-alphabet symbols have no postings
/// (empty results), never a panic.
pub trait ShardSource: Sync {
    fn info(&self) -> ShardInfo;
    /// The shard's build epoch; data RPCs echoing a different value are
    /// rejected before reaching the other methods.
    fn epoch(&self) -> u64 {
        self.info().epoch
    }
    /// Postings-list lengths, parallel to `syms`.
    fn freqs(&self, syms: &[Sym]) -> Vec<u32>;
    /// Postings lists in build order, parallel to `syms`.
    fn postings(&self, syms: &[Sym]) -> Vec<Vec<Posting>>;
    /// Departure-sorted prefix with departure `<= t_max`; `None` when the
    /// temporal orderings are not built.
    fn departing_by(&self, sym: Sym, t_max: f64) -> Option<Vec<(f64, Posting)>>;
    /// One page of the span table starting at local slot `start`; at most
    /// `count` (already clamped to [`SPAN_PAGE_MAX`]) entries.
    fn spans(&self, start: u64, count: u64) -> SpanPage;
}

/// [`ShardSource`] over an in-memory [`IndexShard`]. The `epoch` is
/// caller-assigned (a build counter, a dataset hash — anything that changes
/// when the index changes).
pub struct IndexShardSource<'a> {
    shard: &'a IndexShard,
    epoch: u64,
}

impl<'a> IndexShardSource<'a> {
    pub fn new(shard: &'a IndexShard, epoch: u64) -> IndexShardSource<'a> {
        IndexShardSource { shard, epoch }
    }

    fn in_alphabet(&self, q: Sym) -> bool {
        (q as usize) < self.shard.alphabet_size()
    }
}

impl ShardSource for IndexShardSource<'_> {
    fn info(&self) -> ShardInfo {
        ShardInfo {
            shard_id: self.shard.shard_id() as u32,
            num_shards: self.shard.num_shards() as u32,
            epoch: self.epoch,
            alphabet_size: self.shard.alphabet_size() as u64,
            local_trajectories: self.shard.num_local_trajectories() as u64,
            num_trajectories: self.shard.num_trajectories() as u64,
            total_postings: self.shard.total_postings() as u64,
            size_bytes: self.shard.size_bytes() as u64,
            has_temporal_postings: self.shard.has_temporal_postings(),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn freqs(&self, syms: &[Sym]) -> Vec<u32> {
        syms.iter()
            .map(|&q| {
                if self.in_alphabet(q) {
                    self.shard.freq(q)
                } else {
                    0
                }
            })
            .collect()
    }

    fn postings(&self, syms: &[Sym]) -> Vec<Vec<Posting>> {
        syms.iter()
            .map(|&q| {
                if self.in_alphabet(q) {
                    self.shard.postings(q).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    fn departing_by(&self, sym: Sym, t_max: f64) -> Option<Vec<(f64, Posting)>> {
        if !self.in_alphabet(sym) {
            // In-alphabet misses return empty prefixes; a symbol outside
            // the alphabet has no list at all but is still answerable.
            return self.shard.has_temporal_postings().then(Vec::new);
        }
        self.shard
            .postings_departing_by(sym, t_max)
            .map(|s| s.to_vec())
    }

    fn spans(&self, start: u64, count: u64) -> SpanPage {
        let total = self.shard.num_local_trajectories();
        let lo = (start as usize).min(total);
        let hi = lo + (count as usize).min(SPAN_PAGE_MAX).min(total - lo);
        SpanPage {
            start: lo as u64,
            total: total as u64,
            departures: self.shard.departures()[lo..hi].to_vec(),
            arrivals: self.shard.arrivals()[lo..hi].to_vec(),
        }
    }
}

/// Classifies how a shard RPC was answered, for the server's metrics.
pub(crate) enum RpcDisposition {
    Ok,
    TimedOut,
    Invalid,
}

/// Answers one shard RPC (epoch/deadline guards included). `arrived` is
/// when the frame was read off the socket — the deadline epoch.
pub(crate) fn answer_shard_rpc<S: ShardSource>(
    source: &S,
    request: Request,
    arrived: Instant,
) -> (Reply, RpcDisposition) {
    let (id, epoch, deadline_ms) = match &request {
        Request::ShardInfo { id } => {
            return (
                Reply::ShardInfo {
                    id: *id,
                    info: source.info(),
                },
                RpcDisposition::Ok,
            )
        }
        Request::ShardFreqs {
            id,
            epoch,
            deadline_ms,
            ..
        }
        | Request::ShardPostings {
            id,
            epoch,
            deadline_ms,
            ..
        }
        | Request::ShardDepartingBy {
            id,
            epoch,
            deadline_ms,
            ..
        }
        | Request::ShardSpans {
            id,
            epoch,
            deadline_ms,
            ..
        } => (*id, *epoch, *deadline_ms),
        other => {
            return (
                Reply::Error {
                    id: Some(other.id()),
                    error: ServerError::new(
                        ServerErrorKind::InvalidQuery,
                        "not a shard RPC; this entry point only answers shard_* requests",
                    ),
                },
                RpcDisposition::Invalid,
            )
        }
    };
    if epoch != source.epoch() {
        return (
            Reply::Error {
                id: Some(id),
                error: ServerError::new(
                    ServerErrorKind::EpochMismatch,
                    format!(
                        "request epoch {epoch} does not match shard epoch {} — re-run shard_info",
                        source.epoch()
                    ),
                ),
            },
            RpcDisposition::Invalid,
        );
    }
    if let Some(ms) = deadline_ms {
        if arrived.elapsed() >= Duration::from_millis(ms) {
            return (
                Reply::Error {
                    id: Some(id),
                    error: ServerError::new(
                        ServerErrorKind::DeadlineExceeded,
                        "shard RPC deadline expired before handling began",
                    ),
                },
                RpcDisposition::TimedOut,
            );
        }
    }
    let reply = match request {
        Request::ShardFreqs { id, syms, .. } => Reply::ShardFreqs {
            id,
            freqs: source.freqs(&syms),
        },
        Request::ShardPostings { id, syms, .. } => Reply::ShardPostings {
            id,
            lists: source.postings(&syms),
        },
        Request::ShardDepartingBy { id, sym, t_max, .. } => match source.departing_by(sym, t_max) {
            Some(entries) => Reply::ShardDepartingBy { id, entries },
            None => {
                return (
                    Reply::Error {
                        id: Some(id),
                        error: ServerError::new(
                            ServerErrorKind::InvalidQuery,
                            "temporal postings are not enabled on this shard",
                        ),
                    },
                    RpcDisposition::Invalid,
                )
            }
        },
        Request::ShardSpans {
            id, start, count, ..
        } => Reply::ShardSpans {
            id,
            page: source.spans(start, count),
        },
        _ => unreachable!("non-data RPCs returned above"),
    };
    (reply, RpcDisposition::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj::{Trajectory, TrajectoryStore};

    fn shard() -> IndexShard {
        let mut s = TrajectoryStore::new();
        s.push(Trajectory::new(vec![0, 1, 2], vec![10.0, 11.0, 12.0]));
        s.push(Trajectory::new(vec![2, 1], vec![5.0, 6.0]));
        s.push(Trajectory::new(vec![3, 0], vec![20.0, 21.0]));
        s.push(Trajectory::new(vec![1, 1, 3], vec![1.0, 2.0, 3.0]));
        let mut shard = IndexShard::build(&s, 4, 1, 2);
        shard.enable_temporal_postings();
        shard
    }

    #[test]
    fn source_reports_the_shard_faithfully() {
        let shard = shard();
        let src = IndexShardSource::new(&shard, 7);
        let info = src.info();
        assert_eq!(info.shard_id, 1);
        assert_eq!(info.num_shards, 2);
        assert_eq!(info.epoch, 7);
        assert_eq!(info.num_trajectories, 4);
        assert_eq!(info.local_trajectories, 2);
        assert!(info.has_temporal_postings);
        assert_eq!(src.freqs(&[0, 1, 2, 3]), {
            let want: Vec<u32> = (0..4).map(|q| shard.freq(q)).collect();
            want
        });
        assert_eq!(src.postings(&[1]), vec![shard.postings(1).to_vec()]);
    }

    #[test]
    fn out_of_alphabet_symbols_are_empty_not_a_panic() {
        let shard = shard();
        let src = IndexShardSource::new(&shard, 7);
        assert_eq!(src.freqs(&[99]), vec![0]);
        assert_eq!(src.postings(&[99]), vec![Vec::new()]);
        assert_eq!(src.departing_by(99, 1e9), Some(Vec::new()));
    }

    #[test]
    fn spans_pages_clamp_to_bounds() {
        let shard = shard();
        let src = IndexShardSource::new(&shard, 7);
        let all = src.spans(0, u64::MAX);
        assert_eq!(all.total, 2);
        assert_eq!(all.departures.len(), 2);
        assert_eq!(all.departures, shard.departures());
        let tail = src.spans(1, 10);
        assert_eq!(tail.start, 1);
        assert_eq!(tail.departures, &shard.departures()[1..]);
        let past = src.spans(10, 10);
        assert_eq!(past.departures.len(), 0);
        assert_eq!(past.start, 2);
    }

    #[test]
    fn epoch_mismatch_and_zero_deadline_are_typed() {
        let shard = shard();
        let src = IndexShardSource::new(&shard, 7);
        let (reply, _) = answer_shard_rpc(
            &src,
            Request::ShardFreqs {
                id: 1,
                epoch: 8,
                deadline_ms: None,
                trace_id: None,
                syms: vec![1],
            },
            Instant::now(),
        );
        match reply {
            Reply::Error { id, error } => {
                assert_eq!(id, Some(1));
                assert_eq!(error.kind, ServerErrorKind::EpochMismatch);
            }
            other => panic!("expected epoch mismatch, got {other:?}"),
        }
        // A zero budget has always already expired — the deterministic
        // deadline hook.
        let (reply, _) = answer_shard_rpc(
            &src,
            Request::ShardFreqs {
                id: 2,
                epoch: 7,
                deadline_ms: Some(0),
                trace_id: None,
                syms: vec![1],
            },
            Instant::now(),
        );
        match reply {
            Reply::Error { error, .. } => {
                assert_eq!(error.kind, ServerErrorKind::DeadlineExceeded)
            }
            other => panic!("expected deadline exceeded, got {other:?}"),
        }
    }
}
