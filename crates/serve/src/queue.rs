//! The bounded admission queue between connection readers and the worker
//! pool.
//!
//! Backpressure is the whole point: a full queue **rejects at admission**
//! ([`PushError::Full`] → a typed `overloaded` reply) instead of buffering
//! without bound, so server memory is capped by `capacity × frame size`
//! regardless of client behavior. Closing the queue ([`BoundedQueue::close`])
//! makes the shutdown drain race-free, because "no new work" and "queue
//! empty" are decided under the same mutex: once a reader observes
//! [`PushError::Closed`], no push can interleave with a worker observing
//! [`Pop::Drained`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused; the item comes back to the caller either way.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity — the backpressure signal.
    Full(T),
    /// Closed for shutdown — no new work is admitted.
    Closed(T),
}

/// What a pop observed.
#[derive(Debug)]
pub enum Pop<T> {
    /// A unit of work.
    Item(T),
    /// Timed out with the queue still open (or still holding a race with
    /// another worker); poll again.
    Empty,
    /// Closed **and** empty: the drain is complete, workers may exit.
    Drained,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A mutex+condvar MPMC queue with a hard capacity; see the module docs for
/// the backpressure and drain contracts.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits `item` unless the queue is full or closed — never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for work. Workers loop on this: `Item` is
    /// processed, `Empty` re-polls (giving the caller a chance to observe
    /// external state), `Drained` ends the worker.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Drained;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(inner, timeout)
                .expect("queue mutex poisoned");
            inner = guard;
            if wait.timed_out() {
                return if inner.items.is_empty() && inner.closed {
                    Pop::Drained
                } else if let Some(item) = inner.items.pop_front() {
                    Pop::Item(item)
                } else {
                    Pop::Empty
                };
            }
        }
    }

    /// Closes admission. Queued items stay poppable (the drain); wakes all
    /// waiting workers so they can observe the transition.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Current depth — the live gauge behind the metrics snapshot.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_after_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.len(), 2);
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = BoundedQueue::new(0);
        assert!(matches!(q.try_push(1), Err(PushError::Full(1))));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_pops_queued_items_then_reports_drained() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item("a")
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item("b")
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Drained
        ));
        // Drained is sticky.
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Drained
        ));
    }

    #[test]
    fn empty_open_queue_times_out_as_empty() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Empty
        ));
    }

    #[test]
    fn push_wakes_a_blocked_popper() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || match q2.pop_timeout(Duration::from_secs(10)) {
            Pop::Item(v) => v,
            other => panic!("expected an item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(99).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            matches!(q2.pop_timeout(Duration::from_secs(10)), Pop::Drained)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap());
    }
}
