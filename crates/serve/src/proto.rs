//! The wire protocol: newline-delimited JSON frames over TCP.
//!
//! One frame is one JSON document followed by `\n`. The core codec
//! ([`trajsearch_core::json`]) never emits a raw newline (control
//! characters are `\u`-escaped inside strings), so the framing is
//! unambiguous and a plain `read_line` recovers frame boundaries. Frames
//! larger than [`MAX_FRAME_BYTES`] are rejected before parsing — the peer
//! controls the bytes, the server bounds the memory.
//!
//! Requests (client → server):
//!
//! ```json
//! {"type":"query","id":7,"query":{ ...Query::to_json()... }}
//! {"type":"stats","id":8}
//! ```
//!
//! Replies (server → client), correlated by `id` — pipelined requests may
//! be answered **out of submission order**, workers finish when they
//! finish:
//!
//! ```json
//! {"type":"response","id":7,"response":{ ...Response::to_json()... }}
//! {"type":"error","id":7,"error":{"kind":"overloaded","message":"..."}}
//! {"type":"stats","id":8,"stats":{ ...MetricsSnapshot... }}
//! ```
//!
//! An error frame's `id` is `null` when the offending frame was too
//! malformed to carry one.

use crate::metrics::MetricsSnapshot;
use std::fmt;
use std::io::{self, BufRead, Write};
use trajsearch_core::json::JsonValue;
use trajsearch_core::{Query, Response};

/// Hard bound on a single frame's size, both directions. Large enough for
/// any realistic query batch element; small enough that a hostile peer
/// cannot balloon server memory through one connection.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

// ---------------------------------------------------------------------------
// Typed server errors
// ---------------------------------------------------------------------------

/// Why the server answered a request with an error instead of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerErrorKind {
    /// The bounded admission queue was full — backpressure, retry later.
    Overloaded,
    /// The query's `deadline_ms` budget expired (while queued or at a
    /// cooperative checkpoint mid-execution); no partial answer exists.
    DeadlineExceeded,
    /// The server is draining for shutdown and admits no new queries.
    ShuttingDown,
    /// The query failed validation or admission in the engine (the message
    /// carries the `QueryError` rendering).
    InvalidQuery,
    /// The frame was not a well-formed request envelope.
    Malformed,
}

impl ServerErrorKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ServerErrorKind::Overloaded => "overloaded",
            ServerErrorKind::DeadlineExceeded => "deadline_exceeded",
            ServerErrorKind::ShuttingDown => "shutting_down",
            ServerErrorKind::InvalidQuery => "invalid_query",
            ServerErrorKind::Malformed => "malformed",
        }
    }

    fn from_str(s: &str) -> Option<ServerErrorKind> {
        Some(match s {
            "overloaded" => ServerErrorKind::Overloaded,
            "deadline_exceeded" => ServerErrorKind::DeadlineExceeded,
            "shutting_down" => ServerErrorKind::ShuttingDown,
            "invalid_query" => ServerErrorKind::InvalidQuery,
            "malformed" => ServerErrorKind::Malformed,
            _ => return None,
        })
    }
}

/// A typed error reply; `kind` is the machine-readable classification
/// (overload vs timeout vs invalid), `message` the human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    pub kind: ServerErrorKind,
    pub message: String,
}

impl ServerError {
    pub fn new(kind: ServerErrorKind, message: impl Into<String>) -> ServerError {
        ServerError {
            kind,
            message: message.into(),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("kind".into(), JsonValue::Str(self.kind.as_str().into())),
            ("message".into(), JsonValue::Str(self.message.clone())),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<ServerError, String> {
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .and_then(ServerErrorKind::from_str)
            .ok_or("error frame needs a known \"kind\"")?;
        let message = v
            .get("message")
            .and_then(|m| m.as_str())
            .unwrap_or_default()
            .to_string();
        Ok(ServerError { kind, message })
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServerError {}

// ---------------------------------------------------------------------------
// Request / Reply envelopes
// ---------------------------------------------------------------------------

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer one query. `id` correlates the eventual reply.
    Query { id: u64, query: Query },
    /// Return the server's metrics snapshot.
    Stats { id: u64 },
}

impl Request {
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. } | Request::Stats { id } => *id,
        }
    }

    pub fn to_json(&self) -> String {
        match self {
            Request::Query { id, query } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("query".into())),
                ("id".into(), JsonValue::num_u64(*id)),
                // The query's canonical wire object, embedded directly —
                // not re-rendered and re-parsed, and not a string.
                ("query".into(), query.to_value()),
            ])
            .to_string(),
            Request::Stats { id } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("stats".into())),
                ("id".into(), JsonValue::num_u64(*id)),
            ])
            .to_string(),
        }
    }

    /// Decodes a request frame. The error side carries the frame's `id`
    /// when one could be extracted, so the server can still address its
    /// error reply.
    pub fn from_json(text: &str) -> Result<Request, (Option<u64>, ServerError)> {
        let malformed =
            |id: Option<u64>, msg: &str| (id, ServerError::new(ServerErrorKind::Malformed, msg));
        let doc = match JsonValue::parse(text) {
            Ok(doc) => doc,
            Err(e) => return Err(malformed(None, &format!("unparseable frame: {e}"))),
        };
        let id = doc.get("id").and_then(|v| v.as_u64());
        let Some(id) = id else {
            return Err(malformed(None, "request frame needs a u64 \"id\""));
        };
        match doc.get("type").and_then(|v| v.as_str()) {
            Some("query") => {
                let Some(query) = doc.get("query") else {
                    return Err(malformed(Some(id), "query request needs a \"query\""));
                };
                match Query::from_value(query) {
                    Ok(query) => Ok(Request::Query { id, query }),
                    Err(e) => Err((
                        Some(id),
                        ServerError::new(ServerErrorKind::InvalidQuery, e.to_string()),
                    )),
                }
            }
            Some("stats") => Ok(Request::Stats { id }),
            other => Err(malformed(
                Some(id),
                &format!("unknown request type {other:?}"),
            )),
        }
    }
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Response { id: u64, response: Response },
    Error { id: Option<u64>, error: ServerError },
    Stats { id: u64, stats: MetricsSnapshot },
}

impl Reply {
    pub fn to_json(&self) -> String {
        match self {
            Reply::Response { id, response } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("response".into())),
                ("id".into(), JsonValue::num_u64(*id)),
                ("response".into(), response.to_value()),
            ])
            .to_string(),
            Reply::Error { id, error } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("error".into())),
                ("id".into(), id.map_or(JsonValue::Null, JsonValue::num_u64)),
                ("error".into(), error.to_json_value()),
            ])
            .to_string(),
            Reply::Stats { id, stats } => JsonValue::Obj(vec![
                ("type".into(), JsonValue::Str("stats".into())),
                ("id".into(), JsonValue::num_u64(*id)),
                ("stats".into(), stats.to_json_value()),
            ])
            .to_string(),
        }
    }

    pub fn from_json(text: &str) -> Result<Reply, String> {
        let doc = JsonValue::parse(text)?;
        match doc.get("type").and_then(|v| v.as_str()) {
            Some("response") => {
                let id = doc
                    .get("id")
                    .and_then(|v| v.as_u64())
                    .ok_or("response frame needs a u64 \"id\"")?;
                let response = doc.get("response").ok_or("missing \"response\"")?;
                let response = Response::from_value(response).map_err(|e| e.to_string())?;
                Ok(Reply::Response { id, response })
            }
            Some("error") => {
                let id = doc.get("id").and_then(|v| v.as_u64());
                let error = doc.get("error").ok_or("missing \"error\"")?;
                Ok(Reply::Error {
                    id,
                    error: ServerError::from_json_value(error)?,
                })
            }
            Some("stats") => {
                let id = doc
                    .get("id")
                    .and_then(|v| v.as_u64())
                    .ok_or("stats frame needs a u64 \"id\"")?;
                let stats = doc.get("stats").ok_or("missing \"stats\"")?;
                Ok(Reply::Stats {
                    id,
                    stats: MetricsSnapshot::from_json_value(stats)?,
                })
            }
            other => Err(format!("unknown reply type {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (document + `\n`). The caller flushes — batch writers
/// amortize one flush over many frames.
pub fn write_frame(w: &mut impl Write, json: &str) -> io::Result<()> {
    debug_assert!(!json.contains('\n'), "frames are single-line by contract");
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")
}

/// Reads one frame from a blocking buffered reader. `Ok(None)` is a clean
/// EOF; an oversized frame is an `InvalidData` error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let mut total = 0usize;
    loop {
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return if total == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            };
        }
        total += n;
        if total > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME_BYTES",
            ));
        }
        if line.ends_with('\n') {
            line.pop();
            return Ok(Some(line));
        }
        // read_line only returns without a trailing '\n' at EOF; loop once
        // more to observe the n == 0 and report the truncation.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_frames_round_trip() {
        let query = Query::threshold(vec![1, 2, 3], 1.5)
            .deadline_ms(250)
            .build()
            .unwrap();
        let req = Request::Query { id: 42, query };
        let back = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.id(), 42);
        let req = Request::Stats { id: 7 };
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn malformed_requests_carry_ids_when_possible() {
        // No id at all → addressable to nobody.
        let (id, err) = Request::from_json("{}").unwrap_err();
        assert_eq!(id, None);
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Unparseable bytes.
        let (id, err) = Request::from_json("not json").unwrap_err();
        assert_eq!(id, None);
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Id present, type wrong → the error reply can be addressed.
        let (id, err) = Request::from_json(r#"{"type":"nope","id":3}"#).unwrap_err();
        assert_eq!(id, Some(3));
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Id present, query invalid → typed InvalidQuery.
        let (id, err) =
            Request::from_json(r#"{"type":"query","id":4,"query":{"pattern":[]}}"#).unwrap_err();
        assert_eq!(id, Some(4));
        assert_eq!(err.kind, ServerErrorKind::InvalidQuery);
    }

    #[test]
    fn error_reply_round_trips_with_and_without_id() {
        for id in [Some(9u64), None] {
            let reply = Reply::Error {
                id,
                error: ServerError::new(ServerErrorKind::Overloaded, "queue full (cap 64)"),
            };
            assert_eq!(Reply::from_json(&reply.to_json()).unwrap(), reply);
        }
    }

    #[test]
    fn framing_round_trips_and_bounds_size() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"a":1}"#).unwrap();
        write_frame(&mut buf, r#"{"b":2}"#).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(r#"{"a":1}"#));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(r#"{"b":2}"#));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A frame cut off mid-document is an error, not a silent partial.
        let mut r = BufReader::new(&b"{\"a\":1"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn server_error_kinds_are_stable_strings() {
        for kind in [
            ServerErrorKind::Overloaded,
            ServerErrorKind::DeadlineExceeded,
            ServerErrorKind::ShuttingDown,
            ServerErrorKind::InvalidQuery,
            ServerErrorKind::Malformed,
        ] {
            assert_eq!(ServerErrorKind::from_str(kind.as_str()), Some(kind));
        }
        assert_eq!(ServerErrorKind::from_str("nope"), None);
    }
}
