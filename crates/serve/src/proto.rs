//! The wire protocol: newline-delimited JSON frames over TCP.
//!
//! One frame is one JSON document followed by `\n`. The core codec
//! ([`trajsearch_core::json`]) never emits a raw newline (control
//! characters are `\u`-escaped inside strings), so the framing is
//! unambiguous and a plain `read_line` recovers frame boundaries. Frames
//! larger than [`MAX_FRAME_BYTES`] are rejected before parsing — the peer
//! controls the bytes, the server bounds the memory.
//!
//! Requests (client → server):
//!
//! ```json
//! {"type":"query","id":7,"query":{ ...Query::to_json()... }}
//! {"type":"stats","id":8}
//! ```
//!
//! Replies (server → client), correlated by `id` — pipelined requests may
//! be answered **out of submission order**, workers finish when they
//! finish:
//!
//! ```json
//! {"type":"response","id":7,"response":{ ...Response::to_json()... }}
//! {"type":"error","id":7,"error":{"kind":"overloaded","message":"..."}}
//! {"type":"stats","id":8,"stats":{ ...MetricsSnapshot... }}
//! ```
//!
//! An error frame's `id` is `null` when the offending frame was too
//! malformed to carry one.
//!
//! # Protocol versioning
//!
//! Every frame carries the protocol-version field `"v"` (the
//! `proto_version` of the envelope), holding the **major** version the
//! sender speaks — currently [`PROTO_MAJOR`]. The compatibility rule:
//!
//! * **Absent `"v"`** means major 1 — frames from pre-versioning (PR 5)
//!   peers keep working, and because the decoder has always ignored unknown
//!   object keys, versioned frames parse on old peers too.
//! * **Same major, any minor** is compatible. Minors only *add* frame
//!   types and optional fields; a peer that doesn't know a frame type
//!   answers it `malformed`, never mis-parses it. Minors are discovered via
//!   `hello`, not carried per frame.
//! * **Different major** is incompatible: the receiver rejects the frame
//!   with the typed [`ServerErrorKind::UnsupportedVersion`] — distinct from
//!   `malformed`, so clients can tell "speak an older protocol" apart from
//!   "you sent garbage".
//!
//! Peers that care negotiate up front with `hello` (and get the server's
//! `major`/`minor` back); peers that don't just send frames and rely on the
//! typed rejection:
//!
//! ```json
//! {"v":1,"type":"hello","id":1,"major":1,"minor":1}
//! {"v":1,"type":"hello","id":1,"major":1,"minor":1}
//! ```
//!
//! # Shard RPCs
//!
//! A server in the *shard-server role* (`Server::serve_shard`) exposes one
//! shard of the partitioned index over the same framing — the remote half
//! of the [`trajsearch_core::PostingSource`] contract. Data RPCs carry the
//! shard's build `epoch` (stale epoch → typed `epoch_mismatch`, so a
//! coordinator can never mix results from different index builds) and an
//! optional `deadline_ms` budget measured from frame arrival:
//!
//! ```json
//! {"v":1,"type":"shard_info","id":2}
//! {"v":1,"type":"shard_freqs","id":3,"epoch":7,"deadline_ms":250,"syms":[4,9]}
//! {"v":1,"type":"shard_postings","id":4,"epoch":7,"syms":[4]}
//! {"v":1,"type":"shard_departing_by","id":5,"epoch":7,"sym":4,"t_max":180.5}
//! {"v":1,"type":"shard_spans","id":6,"epoch":7,"start":0,"count":65536}
//! ```
//!
//! Postings are `[traj_id, pos]` pairs (global ids), departing entries
//! `[departure, traj_id, pos]` triples, spans two parallel arrays pages at
//! a time (`count` is clamped to [`SPAN_PAGE_MAX`]; the client continues
//! from `start + departures.len()` until `total` is covered). Floats use
//! Rust's shortest round-trip rendering, so values survive the wire
//! bit-for-bit.
//!
//! # Tracing (minor 3)
//!
//! A `query` frame (and every shard data RPC) may carry an optional
//! `trace_id` — a non-zero u64 naming one end-to-end query timeline.
//! Absent means untraced, and an untraced frame is byte-identical to the
//! minor-2 encoding. A coordinator propagates the id into the shard RPCs it
//! fans out, so each process's spans (tagged with the shared id) can be
//! stitched into one cross-process timeline afterwards. Two requests read
//! the results back:
//!
//! ```json
//! {"v":1,"type":"trace","id":8,"trace_id":7}
//! {"v":1,"type":"metrics_text","id":9}
//! ```
//!
//! `trace` with a `trace_id` returns that timeline's spans from the
//! server's trace sink; without one it returns the slow-query log. The
//! reply's spans carry start/duration nanoseconds relative to the serving
//! process's sink epoch. `metrics_text` returns the server's counters and
//! per-phase latency histograms in the Prometheus text exposition format.
//!
//! # Degraded replies
//!
//! A coordinator that lost shards mid-query answers with a typed
//! `degraded` frame instead of overloading `error` — the query *ran*, but
//! its answer may be missing contributions from [`DegradedInfo::missing_shards`]:
//!
//! ```json
//! {"v":1,"type":"degraded","id":7,"degraded":{"missing_shards":[2],"reason":"..."}}
//! ```

use crate::metrics::MetricsSnapshot;
use std::fmt;
use std::io::{self, BufRead, Write};
use trajsearch_core::json::JsonValue;
use trajsearch_core::{Posting, Query, Response};
use wed::Sym;

/// Hard bound on a single frame's size, both directions. Large enough for
/// any realistic query batch element; small enough that a hostile peer
/// cannot balloon server memory through one connection.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Wire-protocol major version — breaking changes only. Carried on every
/// frame as `"v"`; see the [module docs](self) for the compatibility rule.
pub const PROTO_MAJOR: u32 = 1;

/// Wire-protocol minor version — additive changes (minor 1 added `hello`,
/// the shard RPCs and `degraded`; minor 2 added the `metrics` capability
/// list on the hello reply; minor 3 added the optional `trace_id` field on
/// `query` and shard data RPCs plus the `trace` and `metrics_text`
/// requests). Exchanged via `hello`, not per frame.
pub const PROTO_MINOR: u32 = 3;

/// Distance metrics this build can verify, in the wire names of
/// `trajsearch_core::Metric`. Advertised on the hello reply (minor ≥ 2) so
/// a coordinator can reject a non-WED query aimed at an old shard server
/// with a typed error instead of a protocol failure.
pub const SUPPORTED_METRICS: [&str; 4] = ["wed", "dtw", "lcss", "frechet"];

/// Hard cap on spans returned per `shard_spans` page, keeping every reply
/// frame far below [`MAX_FRAME_BYTES`] even for huge shards.
pub const SPAN_PAGE_MAX: usize = 65_536;

/// Checks a decoded frame's `"v"` field against [`PROTO_MAJOR`]. Absent
/// means major 1 (pre-versioning peers).
fn check_version(doc: &JsonValue) -> Result<(), ServerError> {
    match doc.get("v") {
        None => Ok(()),
        Some(v) => match v.as_u64() {
            Some(m) if m == PROTO_MAJOR as u64 => Ok(()),
            Some(m) => Err(ServerError::new(
                ServerErrorKind::UnsupportedVersion,
                format!("unsupported protocol major {m}; this peer speaks {PROTO_MAJOR}"),
            )),
            None => Err(ServerError::new(
                ServerErrorKind::Malformed,
                "\"v\" must be an unsigned integer",
            )),
        },
    }
}

// ---------------------------------------------------------------------------
// Typed server errors
// ---------------------------------------------------------------------------

/// Why the server answered a request with an error instead of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerErrorKind {
    /// The bounded admission queue was full — backpressure, retry later.
    Overloaded,
    /// The query's `deadline_ms` budget expired (while queued or at a
    /// cooperative checkpoint mid-execution); no partial answer exists.
    DeadlineExceeded,
    /// The server is draining for shutdown and admits no new queries.
    ShuttingDown,
    /// The query failed validation or admission in the engine (the message
    /// carries the `QueryError` rendering).
    InvalidQuery,
    /// The frame was not a well-formed request envelope.
    Malformed,
    /// The frame declared a protocol major this peer does not speak
    /// (distinct from [`Malformed`](ServerErrorKind::Malformed): the bytes
    /// were fine, the dialect was not).
    UnsupportedVersion,
    /// A shard RPC carried an `epoch` that does not match the shard's
    /// current index build; the caller must re-`shard_info` and retry.
    EpochMismatch,
}

impl ServerErrorKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ServerErrorKind::Overloaded => "overloaded",
            ServerErrorKind::DeadlineExceeded => "deadline_exceeded",
            ServerErrorKind::ShuttingDown => "shutting_down",
            ServerErrorKind::InvalidQuery => "invalid_query",
            ServerErrorKind::Malformed => "malformed",
            ServerErrorKind::UnsupportedVersion => "unsupported_version",
            ServerErrorKind::EpochMismatch => "epoch_mismatch",
        }
    }

    fn from_str(s: &str) -> Option<ServerErrorKind> {
        Some(match s {
            "overloaded" => ServerErrorKind::Overloaded,
            "deadline_exceeded" => ServerErrorKind::DeadlineExceeded,
            "shutting_down" => ServerErrorKind::ShuttingDown,
            "invalid_query" => ServerErrorKind::InvalidQuery,
            "malformed" => ServerErrorKind::Malformed,
            "unsupported_version" => ServerErrorKind::UnsupportedVersion,
            "epoch_mismatch" => ServerErrorKind::EpochMismatch,
            _ => return None,
        })
    }
}

/// A typed error reply; `kind` is the machine-readable classification
/// (overload vs timeout vs invalid), `message` the human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    pub kind: ServerErrorKind,
    pub message: String,
}

impl ServerError {
    pub fn new(kind: ServerErrorKind, message: impl Into<String>) -> ServerError {
        ServerError {
            kind,
            message: message.into(),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("kind".into(), JsonValue::Str(self.kind.as_str().into())),
            ("message".into(), JsonValue::Str(self.message.clone())),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<ServerError, String> {
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .and_then(ServerErrorKind::from_str)
            .ok_or("error frame needs a known \"kind\"")?;
        let message = v
            .get("message")
            .and_then(|m| m.as_str())
            .unwrap_or_default()
            .to_string();
        Ok(ServerError { kind, message })
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServerError {}

// ---------------------------------------------------------------------------
// Shard-RPC payloads
// ---------------------------------------------------------------------------

/// Why a reply is partial: the answer was computed, but these shards did
/// not contribute (dropped connection, missed deadline, stale epoch).
/// Carried by the `degraded` reply frame — an explicit envelope, *not* an
/// error: the caller gets real matches plus an honest account of what may
/// be missing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegradedInfo {
    /// Shard ids (ascending, deduplicated) whose data may be missing.
    pub missing_shards: Vec<u32>,
    /// Human-readable detail for the first failure observed.
    pub reason: String,
}

impl DegradedInfo {
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "missing_shards".into(),
                JsonValue::Arr(
                    self.missing_shards
                        .iter()
                        .map(|&s| JsonValue::num_u64(s as u64))
                        .collect(),
                ),
            ),
            ("reason".into(), JsonValue::Str(self.reason.clone())),
        ])
    }

    pub fn from_json_value(v: &JsonValue) -> Result<DegradedInfo, String> {
        let shards = v
            .get("missing_shards")
            .and_then(|a| a.as_arr())
            .ok_or("degraded info needs a \"missing_shards\" array")?;
        let missing_shards = shards
            .iter()
            .map(|s| {
                s.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or("missing_shards entries must be u32")
            })
            .collect::<Result<Vec<u32>, _>>()?;
        let reason = v
            .get("reason")
            .and_then(|r| r.as_str())
            .unwrap_or_default()
            .to_string();
        Ok(DegradedInfo {
            missing_shards,
            reason,
        })
    }
}

impl fmt::Display for DegradedInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded (missing shards {:?}): {}",
            self.missing_shards, self.reason
        )
    }
}

/// What a shard server reports about itself — everything a coordinator
/// needs to validate a cluster (complete, non-overlapping partition of one
/// dataset) and to fill the size/count half of the `PostingSource`
/// contract without further round trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// This server's slice: trajectories with `id % num_shards == shard_id`.
    pub shard_id: u32,
    pub num_shards: u32,
    /// Identifies the index build; all data RPCs must echo it.
    pub epoch: u64,
    pub alphabet_size: u64,
    /// Trajectories owned by this shard.
    pub local_trajectories: u64,
    /// Trajectories in the whole dataset the shard was cut from.
    pub num_trajectories: u64,
    /// Postings held by this shard.
    pub total_postings: u64,
    pub size_bytes: u64,
    pub has_temporal_postings: bool,
}

impl ShardInfo {
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("shard_id".into(), JsonValue::num_u64(self.shard_id as u64)),
            (
                "num_shards".into(),
                JsonValue::num_u64(self.num_shards as u64),
            ),
            ("epoch".into(), JsonValue::num_u64(self.epoch)),
            (
                "alphabet_size".into(),
                JsonValue::num_u64(self.alphabet_size),
            ),
            (
                "local_trajectories".into(),
                JsonValue::num_u64(self.local_trajectories),
            ),
            (
                "num_trajectories".into(),
                JsonValue::num_u64(self.num_trajectories),
            ),
            (
                "total_postings".into(),
                JsonValue::num_u64(self.total_postings),
            ),
            ("size_bytes".into(), JsonValue::num_u64(self.size_bytes)),
            (
                "has_temporal_postings".into(),
                JsonValue::Bool(self.has_temporal_postings),
            ),
        ])
    }

    pub fn from_json_value(v: &JsonValue) -> Result<ShardInfo, String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("shard info needs u64 \"{key}\""))
        };
        let u32_field = |key: &str| {
            field(key)?
                .try_into()
                .map_err(|_| format!("shard info \"{key}\" exceeds u32"))
        };
        Ok(ShardInfo {
            shard_id: u32_field("shard_id")?,
            num_shards: u32_field("num_shards")?,
            epoch: field("epoch")?,
            alphabet_size: field("alphabet_size")?,
            local_trajectories: field("local_trajectories")?,
            num_trajectories: field("num_trajectories")?,
            total_postings: field("total_postings")?,
            size_bytes: field("size_bytes")?,
            has_temporal_postings: v
                .get("has_temporal_postings")
                .and_then(|b| b.as_bool())
                .ok_or("shard info needs bool \"has_temporal_postings\"")?,
        })
    }
}

/// One page of a shard's span table (parallel departure/arrival arrays,
/// dense by local slot). `total` is the shard's local trajectory count;
/// the caller pages until `start + departures.len() == total`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanPage {
    pub start: u64,
    pub total: u64,
    pub departures: Vec<f64>,
    pub arrivals: Vec<f64>,
}

impl SpanPage {
    pub fn to_json_value(&self) -> JsonValue {
        let floats =
            |xs: &[f64]| JsonValue::Arr(xs.iter().map(|&x| JsonValue::num_f64(x)).collect());
        JsonValue::Obj(vec![
            ("start".into(), JsonValue::num_u64(self.start)),
            ("total".into(), JsonValue::num_u64(self.total)),
            ("departures".into(), floats(&self.departures)),
            ("arrivals".into(), floats(&self.arrivals)),
        ])
    }

    pub fn from_json_value(v: &JsonValue) -> Result<SpanPage, String> {
        let floats = |key: &str| {
            v.get(key)
                .and_then(|a| a.as_arr())
                .ok_or_else(|| format!("span page needs array \"{key}\""))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .filter(|f| f.is_finite())
                        .ok_or("span entries must be finite numbers")
                })
                .collect::<Result<Vec<f64>, _>>()
                .map_err(String::from)
        };
        let page = SpanPage {
            start: v
                .get("start")
                .and_then(|x| x.as_u64())
                .ok_or("span page needs u64 \"start\"")?,
            total: v
                .get("total")
                .and_then(|x| x.as_u64())
                .ok_or("span page needs u64 \"total\"")?,
            departures: floats("departures")?,
            arrivals: floats("arrivals")?,
        };
        if page.departures.len() != page.arrivals.len() {
            return Err("span page arrays must have equal length".into());
        }
        Ok(page)
    }
}

/// One span on the wire — a [`trajsearch_obs::SpanRecord`] with the name
/// owned (the in-process record borrows a `&'static str`, which cannot be
/// decoded) and without the trace id (the enclosing [`TraceEntry`] carries
/// it once). Times are nanoseconds relative to the serving process's sink
/// epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    pub span_id: u64,
    /// 0 for a root span.
    pub parent_id: u64,
    pub name: String,
    /// Span-specific payload (candidate count, worker index, round index).
    pub detail: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl WireSpan {
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("span_id".into(), JsonValue::num_u64(self.span_id)),
            ("parent_id".into(), JsonValue::num_u64(self.parent_id)),
            ("name".into(), JsonValue::Str(self.name.clone())),
            ("detail".into(), JsonValue::num_u64(self.detail)),
            ("start_ns".into(), JsonValue::num_u64(self.start_ns)),
            ("dur_ns".into(), JsonValue::num_u64(self.dur_ns)),
        ])
    }

    pub fn from_json_value(v: &JsonValue) -> Result<WireSpan, String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("span needs u64 \"{key}\""))
        };
        Ok(WireSpan {
            span_id: field("span_id")?,
            parent_id: field("parent_id")?,
            name: v
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("span needs string \"name\"")?
                .to_string(),
            detail: field("detail")?,
            start_ns: field("start_ns")?,
            dur_ns: field("dur_ns")?,
        })
    }
}

/// One traced query's timeline as the `trace` request returns it: the
/// trace id, the wire id of the query when the server knows it (slow-log
/// entries do; ad-hoc sink lookups answer `None`), the query's wall time
/// and its spans sorted by start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub trace_id: u64,
    pub query_id: Option<u64>,
    pub wall_ns: u64,
    pub spans: Vec<WireSpan>,
}

impl TraceEntry {
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![("trace_id".into(), JsonValue::num_u64(self.trace_id))];
        if let Some(qid) = self.query_id {
            fields.push(("query_id".into(), JsonValue::num_u64(qid)));
        }
        fields.push(("wall_ns".into(), JsonValue::num_u64(self.wall_ns)));
        fields.push((
            "spans".into(),
            JsonValue::Arr(self.spans.iter().map(|s| s.to_json_value()).collect()),
        ));
        JsonValue::Obj(fields)
    }

    pub fn from_json_value(v: &JsonValue) -> Result<TraceEntry, String> {
        Ok(TraceEntry {
            trace_id: v
                .get("trace_id")
                .and_then(|x| x.as_u64())
                .ok_or("trace entry needs u64 \"trace_id\"")?,
            query_id: v.get("query_id").and_then(|x| x.as_u64()),
            wall_ns: v
                .get("wall_ns")
                .and_then(|x| x.as_u64())
                .ok_or("trace entry needs u64 \"wall_ns\"")?,
            spans: v
                .get("spans")
                .and_then(|a| a.as_arr())
                .ok_or("trace entry needs \"spans\" array")?
                .iter()
                .map(WireSpan::from_json_value)
                .collect::<Result<Vec<WireSpan>, _>>()?,
        })
    }
}

fn syms_to_value(syms: &[Sym]) -> JsonValue {
    JsonValue::Arr(syms.iter().map(|&q| JsonValue::num_u64(q as u64)).collect())
}

fn syms_from_value(v: &JsonValue, what: &str) -> Result<Vec<Sym>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| Sym::try_from(n).ok())
                .ok_or_else(|| format!("{what} entries must be u32 symbols"))
        })
        .collect()
}

fn posting_to_value(p: Posting) -> JsonValue {
    JsonValue::Arr(vec![
        JsonValue::num_u64(p.0 as u64),
        JsonValue::num_u64(p.1 as u64),
    ])
}

fn posting_from_slice(pair: &[JsonValue]) -> Option<Posting> {
    match pair {
        [id, pos] => Some((
            u32::try_from(id.as_u64()?).ok()?,
            u32::try_from(pos.as_u64()?).ok()?,
        )),
        _ => None,
    }
}

fn postings_from_value(v: &JsonValue, what: &str) -> Result<Vec<Posting>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|e| {
            e.as_arr()
                .and_then(posting_from_slice)
                .ok_or_else(|| format!("{what} entries must be [traj_id, pos] pairs"))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Request / Reply envelopes
// ---------------------------------------------------------------------------

/// A client → server frame. Every variant's first field is the `id` that
/// correlates the eventual reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer one query. `trace_id` (minor 3, optional) names the
    /// end-to-end trace this query belongs to; `None` (the wire default)
    /// means untraced and encodes byte-identically to the minor-2 frame.
    Query {
        id: u64,
        query: Query,
        trace_id: Option<u64>,
    },
    /// Return the server's metrics snapshot.
    Stats { id: u64 },
    /// Return trace timelines: the spans of `trace_id` when given, the
    /// slow-query log otherwise (minor 3).
    Trace { id: u64, trace_id: Option<u64> },
    /// Return the Prometheus text exposition of the server's metrics
    /// (minor 3).
    MetricsText { id: u64 },
    /// Version negotiation: the client announces what it speaks, the
    /// server replies with its own `major`/`minor`.
    Hello { id: u64, major: u32, minor: u32 },
    /// Describe the served shard ([`ShardInfo`]), including the `epoch`
    /// every data RPC must echo.
    ShardInfo { id: u64 },
    /// Postings-list lengths for a batch of symbols (one round trip primes
    /// a whole pattern's frequencies).
    ShardFreqs {
        id: u64,
        epoch: u64,
        deadline_ms: Option<u64>,
        trace_id: Option<u64>,
        syms: Vec<Sym>,
    },
    /// Full postings lists for a batch of symbols, in this shard's build
    /// order.
    ShardPostings {
        id: u64,
        epoch: u64,
        deadline_ms: Option<u64>,
        trace_id: Option<u64>,
        syms: Vec<Sym>,
    },
    /// The departure-sorted prefix of one symbol's list with departure
    /// `<= t_max` (finite).
    ShardDepartingBy {
        id: u64,
        epoch: u64,
        deadline_ms: Option<u64>,
        trace_id: Option<u64>,
        sym: Sym,
        t_max: f64,
    },
    /// One page of the shard's span table, `count` clamped to
    /// [`SPAN_PAGE_MAX`].
    ShardSpans {
        id: u64,
        epoch: u64,
        deadline_ms: Option<u64>,
        trace_id: Option<u64>,
        start: u64,
        count: u64,
    },
}

impl Request {
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Stats { id }
            | Request::Trace { id, .. }
            | Request::MetricsText { id }
            | Request::Hello { id, .. }
            | Request::ShardInfo { id }
            | Request::ShardFreqs { id, .. }
            | Request::ShardPostings { id, .. }
            | Request::ShardDepartingBy { id, .. }
            | Request::ShardSpans { id, .. } => *id,
        }
    }

    /// The trace id this frame carries, for the variants that can.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            Request::Query { trace_id, .. }
            | Request::ShardFreqs { trace_id, .. }
            | Request::ShardPostings { trace_id, .. }
            | Request::ShardDepartingBy { trace_id, .. }
            | Request::ShardSpans { trace_id, .. } => *trace_id,
            _ => None,
        }
    }

    /// Stamps a trace id onto the frame if the variant carries one — how a
    /// coordinator propagates the active trace into shard RPCs it builds
    /// generically. A no-op for variants without the field.
    pub fn set_trace_id(&mut self, trace: u64) {
        match self {
            Request::Query { trace_id, .. }
            | Request::ShardFreqs { trace_id, .. }
            | Request::ShardPostings { trace_id, .. }
            | Request::ShardDepartingBy { trace_id, .. }
            | Request::ShardSpans { trace_id, .. } => *trace_id = Some(trace),
            _ => {}
        }
    }

    pub fn to_json(&self) -> String {
        let envelope = |ty: &str, id: u64| {
            vec![
                ("v".into(), JsonValue::num_u64(PROTO_MAJOR as u64)),
                ("type".into(), JsonValue::Str(ty.into())),
                ("id".into(), JsonValue::num_u64(id)),
            ]
        };
        // `trace_id` is omitted when absent, so untraced frames stay
        // byte-identical to the pre-minor-3 encoding.
        let with_trace = |mut fields: Vec<(String, JsonValue)>, trace_id: &Option<u64>| {
            if let Some(t) = trace_id {
                fields.push(("trace_id".into(), JsonValue::num_u64(*t)));
            }
            fields
        };
        let with_shard_args = |fields: Vec<(String, JsonValue)>,
                               epoch: u64,
                               deadline_ms: Option<u64>,
                               trace_id: &Option<u64>| {
            let mut fields = fields;
            fields.push(("epoch".into(), JsonValue::num_u64(epoch)));
            if let Some(ms) = deadline_ms {
                fields.push(("deadline_ms".into(), JsonValue::num_u64(ms)));
            }
            with_trace(fields, trace_id)
        };
        let fields = match self {
            Request::Query {
                id,
                query,
                trace_id,
            } => {
                let mut f = envelope("query", *id);
                // The query's canonical wire object, embedded directly —
                // not re-rendered and re-parsed, and not a string.
                f.push(("query".into(), query.to_value()));
                with_trace(f, trace_id)
            }
            Request::Stats { id } => envelope("stats", *id),
            Request::Trace { id, trace_id } => with_trace(envelope("trace", *id), trace_id),
            Request::MetricsText { id } => envelope("metrics_text", *id),
            Request::Hello { id, major, minor } => {
                let mut f = envelope("hello", *id);
                f.push(("major".into(), JsonValue::num_u64(*major as u64)));
                f.push(("minor".into(), JsonValue::num_u64(*minor as u64)));
                f
            }
            Request::ShardInfo { id } => envelope("shard_info", *id),
            Request::ShardFreqs {
                id,
                epoch,
                deadline_ms,
                trace_id,
                syms,
            } => {
                let mut f =
                    with_shard_args(envelope("shard_freqs", *id), *epoch, *deadline_ms, trace_id);
                f.push(("syms".into(), syms_to_value(syms)));
                f
            }
            Request::ShardPostings {
                id,
                epoch,
                deadline_ms,
                trace_id,
                syms,
            } => {
                let mut f = with_shard_args(
                    envelope("shard_postings", *id),
                    *epoch,
                    *deadline_ms,
                    trace_id,
                );
                f.push(("syms".into(), syms_to_value(syms)));
                f
            }
            Request::ShardDepartingBy {
                id,
                epoch,
                deadline_ms,
                trace_id,
                sym,
                t_max,
            } => {
                let mut f = with_shard_args(
                    envelope("shard_departing_by", *id),
                    *epoch,
                    *deadline_ms,
                    trace_id,
                );
                f.push(("sym".into(), JsonValue::num_u64(*sym as u64)));
                f.push(("t_max".into(), JsonValue::num_f64(*t_max)));
                f
            }
            Request::ShardSpans {
                id,
                epoch,
                deadline_ms,
                trace_id,
                start,
                count,
            } => {
                let mut f =
                    with_shard_args(envelope("shard_spans", *id), *epoch, *deadline_ms, trace_id);
                f.push(("start".into(), JsonValue::num_u64(*start)));
                f.push(("count".into(), JsonValue::num_u64(*count)));
                f
            }
        };
        JsonValue::Obj(fields).to_string()
    }

    /// Decodes a request frame. The error side carries the frame's `id`
    /// when one could be extracted, so the server can still address its
    /// error reply. An unknown protocol major is a typed
    /// `unsupported_version`, not `malformed`.
    pub fn from_json(text: &str) -> Result<Request, (Option<u64>, ServerError)> {
        let malformed =
            |id: Option<u64>, msg: &str| (id, ServerError::new(ServerErrorKind::Malformed, msg));
        let doc = match JsonValue::parse(text) {
            Ok(doc) => doc,
            Err(e) => return Err(malformed(None, &format!("unparseable frame: {e}"))),
        };
        let id = doc.get("id").and_then(|v| v.as_u64());
        if let Err(error) = check_version(&doc) {
            return Err((id, error));
        }
        let Some(id) = id else {
            return Err(malformed(None, "request frame needs a u64 \"id\""));
        };
        let u64_field = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("request needs u64 \"{key}\""))
        };
        let trace_arg = || -> Result<Option<u64>, String> {
            match doc.get("trace_id") {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => Ok(Some(v.as_u64().ok_or("\"trace_id\" must be a u64")?)),
            }
        };
        let shard_args = || -> Result<(u64, Option<u64>, Option<u64>), String> {
            let epoch = u64_field("epoch")?;
            let deadline_ms = match doc.get("deadline_ms") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or("\"deadline_ms\" must be a u64")?),
            };
            Ok((epoch, deadline_ms, trace_arg()?))
        };
        let decode = |what: &str| -> Result<Request, String> {
            match what {
                "stats" => Ok(Request::Stats { id }),
                "trace" => Ok(Request::Trace {
                    id,
                    trace_id: trace_arg()?,
                }),
                "metrics_text" => Ok(Request::MetricsText { id }),
                "hello" => Ok(Request::Hello {
                    id,
                    major: u64_field("major")?
                        .try_into()
                        .map_err(|_| "\"major\" exceeds u32")?,
                    minor: u64_field("minor")?
                        .try_into()
                        .map_err(|_| "\"minor\" exceeds u32")?,
                }),
                "shard_info" => Ok(Request::ShardInfo { id }),
                "shard_freqs" | "shard_postings" => {
                    let (epoch, deadline_ms, trace_id) = shard_args()?;
                    let syms = syms_from_value(
                        doc.get("syms").ok_or("request needs \"syms\"")?,
                        "\"syms\"",
                    )?;
                    Ok(if what == "shard_freqs" {
                        Request::ShardFreqs {
                            id,
                            epoch,
                            deadline_ms,
                            trace_id,
                            syms,
                        }
                    } else {
                        Request::ShardPostings {
                            id,
                            epoch,
                            deadline_ms,
                            trace_id,
                            syms,
                        }
                    })
                }
                "shard_departing_by" => {
                    let (epoch, deadline_ms, trace_id) = shard_args()?;
                    let sym = u64_field("sym")?
                        .try_into()
                        .map_err(|_| "\"sym\" exceeds u32")?;
                    let t_max = doc
                        .get("t_max")
                        .and_then(|v| v.as_f64())
                        .filter(|t| t.is_finite())
                        .ok_or("request needs finite \"t_max\"")?;
                    Ok(Request::ShardDepartingBy {
                        id,
                        epoch,
                        deadline_ms,
                        trace_id,
                        sym,
                        t_max,
                    })
                }
                "shard_spans" => {
                    let (epoch, deadline_ms, trace_id) = shard_args()?;
                    Ok(Request::ShardSpans {
                        id,
                        epoch,
                        deadline_ms,
                        trace_id,
                        start: u64_field("start")?,
                        count: u64_field("count")?,
                    })
                }
                other => Err(format!("unknown request type {other:?}")),
            }
        };
        match doc.get("type").and_then(|v| v.as_str()) {
            Some("query") => {
                let Some(query) = doc.get("query") else {
                    return Err(malformed(Some(id), "query request needs a \"query\""));
                };
                let trace_id = match trace_arg() {
                    Ok(t) => t,
                    Err(e) => return Err(malformed(Some(id), &e)),
                };
                match Query::from_value(query) {
                    Ok(query) => Ok(Request::Query {
                        id,
                        query,
                        trace_id,
                    }),
                    Err(e) => Err((
                        Some(id),
                        ServerError::new(ServerErrorKind::InvalidQuery, e.to_string()),
                    )),
                }
            }
            Some(what) => decode(what).map_err(|e| malformed(Some(id), &e)),
            None => Err(malformed(Some(id), "request frame needs a \"type\"")),
        }
    }
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Response {
        id: u64,
        response: Response,
    },
    /// The query ran but the answer may be missing shard contributions —
    /// a first-class outcome, deliberately not an [`Reply::Error`].
    Degraded {
        id: u64,
        degraded: DegradedInfo,
        response: Option<Response>,
    },
    Error {
        id: Option<u64>,
        error: ServerError,
    },
    Stats {
        id: u64,
        stats: MetricsSnapshot,
    },
    /// Trace timelines (minor 3): the requested trace's spans, or the
    /// slow-query log when the request named no trace id.
    Trace {
        id: u64,
        entries: Vec<TraceEntry>,
    },
    /// Prometheus text exposition of the server's metrics (minor 3).
    MetricsText {
        id: u64,
        text: String,
    },
    Hello {
        id: u64,
        major: u32,
        minor: u32,
        /// Metric capability list ([`SUPPORTED_METRICS`] on a current
        /// server). Empty means the peer predates minor 2 (or chose not to
        /// advertise): assume WED only.
        metrics: Vec<String>,
    },
    ShardInfo {
        id: u64,
        info: ShardInfo,
    },
    /// Lengths, parallel to the request's `syms`.
    ShardFreqs {
        id: u64,
        freqs: Vec<u32>,
    },
    /// Lists, parallel to the request's `syms`.
    ShardPostings {
        id: u64,
        lists: Vec<Vec<Posting>>,
    },
    ShardDepartingBy {
        id: u64,
        entries: Vec<(f64, Posting)>,
    },
    ShardSpans {
        id: u64,
        page: SpanPage,
    },
}

impl Reply {
    pub fn id(&self) -> Option<u64> {
        match self {
            Reply::Error { id, .. } => *id,
            Reply::Response { id, .. }
            | Reply::Degraded { id, .. }
            | Reply::Stats { id, .. }
            | Reply::Trace { id, .. }
            | Reply::MetricsText { id, .. }
            | Reply::Hello { id, .. }
            | Reply::ShardInfo { id, .. }
            | Reply::ShardFreqs { id, .. }
            | Reply::ShardPostings { id, .. }
            | Reply::ShardDepartingBy { id, .. }
            | Reply::ShardSpans { id, .. } => Some(*id),
        }
    }

    pub fn to_json(&self) -> String {
        let envelope = |ty: &str, id: u64| {
            vec![
                ("v".into(), JsonValue::num_u64(PROTO_MAJOR as u64)),
                ("type".into(), JsonValue::Str(ty.into())),
                ("id".into(), JsonValue::num_u64(id)),
            ]
        };
        let fields = match self {
            Reply::Response { id, response } => {
                let mut f = envelope("response", *id);
                f.push(("response".into(), response.to_value()));
                f
            }
            Reply::Degraded {
                id,
                degraded,
                response,
            } => {
                let mut f = envelope("degraded", *id);
                f.push(("degraded".into(), degraded.to_json_value()));
                if let Some(r) = response {
                    f.push(("response".into(), r.to_value()));
                }
                f
            }
            Reply::Error { id, error } => vec![
                ("v".into(), JsonValue::num_u64(PROTO_MAJOR as u64)),
                ("type".into(), JsonValue::Str("error".into())),
                ("id".into(), id.map_or(JsonValue::Null, JsonValue::num_u64)),
                ("error".into(), error.to_json_value()),
            ],
            Reply::Stats { id, stats } => {
                let mut f = envelope("stats", *id);
                f.push(("stats".into(), stats.to_json_value()));
                f
            }
            Reply::Trace { id, entries } => {
                let mut f = envelope("trace", *id);
                f.push((
                    "entries".into(),
                    JsonValue::Arr(entries.iter().map(|e| e.to_json_value()).collect()),
                ));
                f
            }
            Reply::MetricsText { id, text } => {
                let mut f = envelope("metrics_text", *id);
                f.push(("text".into(), JsonValue::Str(text.clone())));
                f
            }
            Reply::Hello {
                id,
                major,
                minor,
                metrics,
            } => {
                let mut f = envelope("hello", *id);
                f.push(("major".into(), JsonValue::num_u64(*major as u64)));
                f.push(("minor".into(), JsonValue::num_u64(*minor as u64)));
                // Omitted when empty, keeping the minor-1 frame unchanged.
                if !metrics.is_empty() {
                    f.push((
                        "metrics".into(),
                        JsonValue::Arr(metrics.iter().map(|m| JsonValue::Str(m.clone())).collect()),
                    ));
                }
                f
            }
            Reply::ShardInfo { id, info } => {
                let mut f = envelope("shard_info", *id);
                f.push(("info".into(), info.to_json_value()));
                f
            }
            Reply::ShardFreqs { id, freqs } => {
                let mut f = envelope("shard_freqs", *id);
                f.push((
                    "freqs".into(),
                    JsonValue::Arr(
                        freqs
                            .iter()
                            .map(|&n| JsonValue::num_u64(n as u64))
                            .collect(),
                    ),
                ));
                f
            }
            Reply::ShardPostings { id, lists } => {
                let mut f = envelope("shard_postings", *id);
                f.push((
                    "lists".into(),
                    JsonValue::Arr(
                        lists
                            .iter()
                            .map(|list| {
                                JsonValue::Arr(list.iter().map(|&p| posting_to_value(p)).collect())
                            })
                            .collect(),
                    ),
                ));
                f
            }
            Reply::ShardDepartingBy { id, entries } => {
                let mut f = envelope("shard_departing_by", *id);
                f.push((
                    "entries".into(),
                    JsonValue::Arr(
                        entries
                            .iter()
                            .map(|&(dep, (tid, pos))| {
                                JsonValue::Arr(vec![
                                    JsonValue::num_f64(dep),
                                    JsonValue::num_u64(tid as u64),
                                    JsonValue::num_u64(pos as u64),
                                ])
                            })
                            .collect(),
                    ),
                ));
                f
            }
            Reply::ShardSpans { id, page } => {
                let mut f = envelope("shard_spans", *id);
                f.push(("page".into(), page.to_json_value()));
                f
            }
        };
        JsonValue::Obj(fields).to_string()
    }

    pub fn from_json(text: &str) -> Result<Reply, String> {
        let doc = JsonValue::parse(text)?;
        check_version(&doc).map_err(|e| e.to_string())?;
        let need_id = |what: &str| {
            doc.get("id")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("{what} frame needs a u64 \"id\""))
        };
        match doc.get("type").and_then(|v| v.as_str()) {
            Some("response") => {
                let id = need_id("response")?;
                let response = doc.get("response").ok_or("missing \"response\"")?;
                let response = Response::from_value(response).map_err(|e| e.to_string())?;
                Ok(Reply::Response { id, response })
            }
            Some("degraded") => {
                let id = need_id("degraded")?;
                let degraded = doc.get("degraded").ok_or("missing \"degraded\"")?;
                let response = match doc.get("response") {
                    None => None,
                    Some(r) => Some(Response::from_value(r).map_err(|e| e.to_string())?),
                };
                Ok(Reply::Degraded {
                    id,
                    degraded: DegradedInfo::from_json_value(degraded)?,
                    response,
                })
            }
            Some("error") => {
                let id = doc.get("id").and_then(|v| v.as_u64());
                let error = doc.get("error").ok_or("missing \"error\"")?;
                Ok(Reply::Error {
                    id,
                    error: ServerError::from_json_value(error)?,
                })
            }
            Some("stats") => {
                let id = need_id("stats")?;
                let stats = doc.get("stats").ok_or("missing \"stats\"")?;
                Ok(Reply::Stats {
                    id,
                    stats: MetricsSnapshot::from_json_value(stats)?,
                })
            }
            Some("trace") => {
                let id = need_id("trace")?;
                let entries = doc
                    .get("entries")
                    .and_then(|a| a.as_arr())
                    .ok_or("missing \"entries\" array")?
                    .iter()
                    .map(TraceEntry::from_json_value)
                    .collect::<Result<Vec<TraceEntry>, _>>()?;
                Ok(Reply::Trace { id, entries })
            }
            Some("metrics_text") => {
                let id = need_id("metrics_text")?;
                let text = doc
                    .get("text")
                    .and_then(|t| t.as_str())
                    .ok_or("missing string \"text\"")?
                    .to_string();
                Ok(Reply::MetricsText { id, text })
            }
            Some("hello") => {
                let id = need_id("hello")?;
                let field = |key: &str| {
                    doc.get(key)
                        .and_then(|v| v.as_u64())
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("hello frame needs u32 \"{key}\""))
                };
                let metrics = match doc.get("metrics") {
                    None | Some(JsonValue::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or("hello \"metrics\" must be an array")?
                        .iter()
                        .map(|m| {
                            m.as_str()
                                .map(str::to_string)
                                .ok_or("hello \"metrics\" entries must be strings")
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok(Reply::Hello {
                    id,
                    major: field("major")?,
                    minor: field("minor")?,
                    metrics,
                })
            }
            Some("shard_info") => {
                let id = need_id("shard_info")?;
                let info = doc.get("info").ok_or("missing \"info\"")?;
                Ok(Reply::ShardInfo {
                    id,
                    info: ShardInfo::from_json_value(info)?,
                })
            }
            Some("shard_freqs") => {
                let id = need_id("shard_freqs")?;
                let freqs = doc
                    .get("freqs")
                    .and_then(|a| a.as_arr())
                    .ok_or("missing \"freqs\" array")?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or("freqs entries must be u32")
                    })
                    .collect::<Result<Vec<u32>, _>>()?;
                Ok(Reply::ShardFreqs { id, freqs })
            }
            Some("shard_postings") => {
                let id = need_id("shard_postings")?;
                let lists = doc
                    .get("lists")
                    .and_then(|a| a.as_arr())
                    .ok_or("missing \"lists\" array")?
                    .iter()
                    .map(|l| postings_from_value(l, "\"lists\""))
                    .collect::<Result<Vec<Vec<Posting>>, _>>()?;
                Ok(Reply::ShardPostings { id, lists })
            }
            Some("shard_departing_by") => {
                let id = need_id("shard_departing_by")?;
                let entries = doc
                    .get("entries")
                    .and_then(|a| a.as_arr())
                    .ok_or("missing \"entries\" array")?
                    .iter()
                    .map(|e| {
                        let triple = e.as_arr().ok_or("entries must be arrays")?;
                        match triple {
                            [dep, tid, pos] => {
                                let dep = dep
                                    .as_f64()
                                    .filter(|d| d.is_finite())
                                    .ok_or("departure must be finite")?;
                                let posting = posting_from_slice(&[tid.clone(), pos.clone()])
                                    .ok_or("entry ids must be u32")?;
                                Ok((dep, posting))
                            }
                            _ => {
                                Err("entries must be [departure, traj_id, pos] triples".to_string())
                            }
                        }
                    })
                    .collect::<Result<Vec<(f64, Posting)>, String>>()?;
                Ok(Reply::ShardDepartingBy { id, entries })
            }
            Some("shard_spans") => {
                let id = need_id("shard_spans")?;
                let page = doc.get("page").ok_or("missing \"page\"")?;
                Ok(Reply::ShardSpans {
                    id,
                    page: SpanPage::from_json_value(page)?,
                })
            }
            other => Err(format!("unknown reply type {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (document + `\n`). The caller flushes — batch writers
/// amortize one flush over many frames.
pub fn write_frame(w: &mut impl Write, json: &str) -> io::Result<()> {
    debug_assert!(!json.contains('\n'), "frames are single-line by contract");
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")
}

/// Reads one frame from a blocking buffered reader. `Ok(None)` is a clean
/// EOF; an oversized frame is an `InvalidData` error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let mut total = 0usize;
    loop {
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return if total == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            };
        }
        total += n;
        if total > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME_BYTES",
            ));
        }
        if line.ends_with('\n') {
            line.pop();
            return Ok(Some(line));
        }
        // read_line only returns without a trailing '\n' at EOF; loop once
        // more to observe the n == 0 and report the truncation.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_frames_round_trip() {
        let query = Query::threshold(vec![1, 2, 3], 1.5)
            .deadline_ms(250)
            .build()
            .unwrap();
        let req = Request::Query {
            id: 42,
            query,
            trace_id: None,
        };
        let back = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.id(), 42);
        let req = Request::Stats { id: 7 };
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn untraced_query_frames_are_byte_identical_to_legacy() {
        let query = Query::threshold(vec![1, 2, 3], 1.5)
            .deadline_ms(250)
            .build()
            .unwrap();
        // The minor-2 frame shape, built by hand: envelope + query object.
        let legacy = JsonValue::Obj(vec![
            ("v".into(), JsonValue::num_u64(PROTO_MAJOR as u64)),
            ("type".into(), JsonValue::Str("query".into())),
            ("id".into(), JsonValue::num_u64(42)),
            ("query".into(), query.to_value()),
        ])
        .to_string();
        let untraced = Request::Query {
            id: 42,
            query: query.clone(),
            trace_id: None,
        }
        .to_json();
        assert_eq!(untraced, legacy);
        assert!(!untraced.contains("trace_id"));
        // A legacy frame (no trace_id key) decodes as untraced.
        assert_eq!(
            Request::from_json(&legacy).unwrap(),
            Request::Query {
                id: 42,
                query,
                trace_id: None,
            }
        );
    }

    #[test]
    fn traced_frames_round_trip_and_stamping_works() {
        let query = Query::threshold(vec![1, 2], 0.5).build().unwrap();
        let req = Request::Query {
            id: 1,
            query,
            trace_id: Some(77),
        };
        let json = req.to_json();
        assert!(json.contains("\"trace_id\":77"), "frame: {json}");
        let back = Request::from_json(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.trace_id(), Some(77));
        // set_trace_id stamps every data RPC and ignores the rest.
        let mut rpc = Request::ShardFreqs {
            id: 2,
            epoch: 7,
            deadline_ms: None,
            trace_id: None,
            syms: vec![1],
        };
        rpc.set_trace_id(77);
        assert_eq!(rpc.trace_id(), Some(77));
        assert_eq!(Request::from_json(&rpc.to_json()).unwrap(), rpc);
        let mut stats = Request::Stats { id: 3 };
        stats.set_trace_id(77);
        assert_eq!(stats.trace_id(), None);
    }

    #[test]
    fn trace_and_metrics_text_frames_round_trip() {
        for trace_id in [None, Some(9u64)] {
            let req = Request::Trace { id: 5, trace_id };
            assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        }
        let req = Request::MetricsText { id: 6 };
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        let reply = Reply::Trace {
            id: 5,
            entries: vec![TraceEntry {
                trace_id: 9,
                query_id: Some(12),
                wall_ns: 5_000,
                spans: vec![
                    WireSpan {
                        span_id: 1,
                        parent_id: 0,
                        name: "query".into(),
                        detail: 0,
                        start_ns: 0,
                        dur_ns: 5_000,
                    },
                    WireSpan {
                        span_id: 2,
                        parent_id: 1,
                        name: "verify".into(),
                        detail: 3,
                        start_ns: 100,
                        dur_ns: 4_000,
                    },
                ],
            }],
        };
        assert_eq!(Reply::from_json(&reply.to_json()).unwrap(), reply);
        // An entry without a query id omits the key.
        let anon = Reply::Trace {
            id: 5,
            entries: vec![TraceEntry {
                trace_id: 9,
                query_id: None,
                wall_ns: 1,
                spans: Vec::new(),
            }],
        };
        assert!(!anon.to_json().contains("query_id"));
        assert_eq!(Reply::from_json(&anon.to_json()).unwrap(), anon);
        let reply = Reply::MetricsText {
            id: 6,
            text: "# HELP x X.\n# TYPE x counter\nx 1\n".into(),
        };
        assert_eq!(Reply::from_json(&reply.to_json()).unwrap(), reply);
    }

    #[test]
    fn malformed_requests_carry_ids_when_possible() {
        // No id at all → addressable to nobody.
        let (id, err) = Request::from_json("{}").unwrap_err();
        assert_eq!(id, None);
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Unparseable bytes.
        let (id, err) = Request::from_json("not json").unwrap_err();
        assert_eq!(id, None);
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Id present, type wrong → the error reply can be addressed.
        let (id, err) = Request::from_json(r#"{"type":"nope","id":3}"#).unwrap_err();
        assert_eq!(id, Some(3));
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Id present, query invalid → typed InvalidQuery.
        let (id, err) =
            Request::from_json(r#"{"type":"query","id":4,"query":{"pattern":[]}}"#).unwrap_err();
        assert_eq!(id, Some(4));
        assert_eq!(err.kind, ServerErrorKind::InvalidQuery);
    }

    #[test]
    fn error_reply_round_trips_with_and_without_id() {
        for id in [Some(9u64), None] {
            let reply = Reply::Error {
                id,
                error: ServerError::new(ServerErrorKind::Overloaded, "queue full (cap 64)"),
            };
            assert_eq!(Reply::from_json(&reply.to_json()).unwrap(), reply);
        }
    }

    #[test]
    fn framing_round_trips_and_bounds_size() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"a":1}"#).unwrap();
        write_frame(&mut buf, r#"{"b":2}"#).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(r#"{"a":1}"#));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(r#"{"b":2}"#));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A frame cut off mid-document is an error, not a silent partial.
        let mut r = BufReader::new(&b"{\"a\":1"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn server_error_kinds_are_stable_strings() {
        for kind in [
            ServerErrorKind::Overloaded,
            ServerErrorKind::DeadlineExceeded,
            ServerErrorKind::ShuttingDown,
            ServerErrorKind::InvalidQuery,
            ServerErrorKind::Malformed,
            ServerErrorKind::UnsupportedVersion,
            ServerErrorKind::EpochMismatch,
        ] {
            assert_eq!(ServerErrorKind::from_str(kind.as_str()), Some(kind));
        }
        assert_eq!(ServerErrorKind::from_str("nope"), None);
        assert_eq!(
            ServerErrorKind::UnsupportedVersion.as_str(),
            "unsupported_version"
        );
    }

    #[test]
    fn frames_carry_the_protocol_major() {
        let frame = Request::Stats { id: 1 }.to_json();
        assert!(frame.contains("\"v\":1"), "frame: {frame}");
        let frame = Reply::Error {
            id: None,
            error: ServerError::new(ServerErrorKind::Malformed, "x"),
        }
        .to_json();
        assert!(frame.contains("\"v\":1"), "frame: {frame}");
    }

    #[test]
    fn version_rule_absent_means_major_one_and_unknown_major_is_typed() {
        // Pre-versioning peers (no "v") keep working.
        assert_eq!(
            Request::from_json(r#"{"type":"stats","id":1}"#).unwrap(),
            Request::Stats { id: 1 }
        );
        // A future major is a typed unsupported_version, not malformed —
        // and it still carries the frame id so the reply is addressable.
        let (id, err) = Request::from_json(r#"{"v":2,"type":"stats","id":5}"#).unwrap_err();
        assert_eq!(id, Some(5));
        assert_eq!(err.kind, ServerErrorKind::UnsupportedVersion);
        // A non-numeric "v" is garbage, hence malformed.
        let (_, err) = Request::from_json(r#"{"v":"x","type":"stats","id":5}"#).unwrap_err();
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Same rule on the client side.
        let e = Reply::from_json(r#"{"v":9,"type":"stats","id":1,"stats":{}}"#).unwrap_err();
        assert!(e.contains("unsupported protocol major 9"), "got: {e}");
    }

    #[test]
    fn hello_round_trips_both_directions() {
        let req = Request::Hello {
            id: 3,
            major: PROTO_MAJOR,
            minor: PROTO_MINOR,
        };
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        let reply = Reply::Hello {
            id: 3,
            major: 1,
            minor: 4,
            metrics: SUPPORTED_METRICS.iter().map(|m| m.to_string()).collect(),
        };
        assert_eq!(Reply::from_json(&reply.to_json()).unwrap(), reply);
        // A minor-1 reply (no "metrics" key) decodes as the empty list, and
        // an empty list encodes without the key — the legacy frame shape.
        let legacy = Reply::Hello {
            id: 3,
            major: 1,
            minor: 1,
            metrics: Vec::new(),
        };
        assert!(!legacy.to_json().contains("metrics"));
        assert_eq!(Reply::from_json(&legacy.to_json()).unwrap(), legacy);
    }

    #[test]
    fn shard_rpc_requests_round_trip() {
        let frames = [
            Request::ShardInfo { id: 10 },
            Request::ShardFreqs {
                id: 11,
                epoch: 7,
                deadline_ms: Some(250),
                trace_id: None,
                syms: vec![0, 4, 9],
            },
            Request::ShardPostings {
                id: 12,
                epoch: 7,
                deadline_ms: None,
                trace_id: Some(31),
                syms: vec![4],
            },
            Request::ShardDepartingBy {
                id: 13,
                epoch: 7,
                deadline_ms: Some(1),
                trace_id: None,
                sym: 4,
                t_max: 180.5,
            },
            Request::ShardSpans {
                id: 14,
                epoch: 7,
                deadline_ms: None,
                trace_id: Some(31),
                start: 0,
                count: 65536,
            },
        ];
        for req in frames {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.id(), req.id());
        }
    }

    #[test]
    fn shard_rpc_replies_round_trip() {
        let frames = [
            Reply::ShardInfo {
                id: 20,
                info: ShardInfo {
                    shard_id: 1,
                    num_shards: 3,
                    epoch: 7,
                    alphabet_size: 64,
                    local_trajectories: 40,
                    num_trajectories: 120,
                    total_postings: 960,
                    size_bytes: 7680,
                    has_temporal_postings: true,
                },
            },
            Reply::ShardFreqs {
                id: 21,
                freqs: vec![0, 3, 17],
            },
            Reply::ShardPostings {
                id: 22,
                lists: vec![vec![(1, 0), (4, 2)], vec![]],
            },
            Reply::ShardDepartingBy {
                id: 23,
                entries: vec![(0.25, (1, 0)), (180.5, (4, 2))],
            },
            Reply::ShardSpans {
                id: 24,
                page: SpanPage {
                    start: 0,
                    total: 40,
                    departures: vec![0.25, 1.5],
                    arrivals: vec![2.75, 9.0],
                },
            },
            Reply::Degraded {
                id: 25,
                degraded: DegradedInfo {
                    missing_shards: vec![2],
                    reason: "shard 2: connection reset".into(),
                },
                response: None,
            },
        ];
        for reply in frames {
            assert_eq!(
                Reply::from_json(&reply.to_json()).unwrap(),
                reply,
                "{reply:?}"
            );
        }
    }

    #[test]
    fn shard_rpc_argument_validation_is_malformed_not_a_panic() {
        // Missing epoch.
        let (id, err) =
            Request::from_json(r#"{"v":1,"type":"shard_freqs","id":1,"syms":[1]}"#).unwrap_err();
        assert_eq!(id, Some(1));
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Non-finite t_max (JSON can't write NaN; overflowing exponent
        // parses to infinity and must be rejected).
        let (_, err) = Request::from_json(
            r#"{"v":1,"type":"shard_departing_by","id":2,"epoch":0,"sym":1,"t_max":1e999}"#,
        )
        .unwrap_err();
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Negative symbol.
        let (_, err) =
            Request::from_json(r#"{"v":1,"type":"shard_postings","id":3,"epoch":0,"syms":[-1]}"#)
                .unwrap_err();
        assert_eq!(err.kind, ServerErrorKind::Malformed);
        // Mismatched span arrays on the reply side.
        let e = Reply::from_json(
            r#"{"v":1,"type":"shard_spans","id":4,"page":{"start":0,"total":1,"departures":[1.0],"arrivals":[]}}"#,
        )
        .unwrap_err();
        assert!(e.contains("equal length"), "got: {e}");
    }

    #[test]
    fn degraded_with_partial_response_round_trips() {
        // A degraded reply may still carry the partial answer it computed.
        let text = Reply::Degraded {
            id: 9,
            degraded: DegradedInfo {
                missing_shards: vec![0, 2],
                reason: "deadline".into(),
            },
            response: None,
        }
        .to_json();
        match Reply::from_json(&text).unwrap() {
            Reply::Degraded {
                degraded, response, ..
            } => {
                assert_eq!(degraded.missing_shards, vec![0, 2]);
                assert!(response.is_none());
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }
}
