//! # trajsearch-serve — a concurrent network front-end for the engine
//!
//! The paper's engine answers queries in-process; a production deployment
//! answers them over a socket, under overload, with latency budgets. This
//! crate is that layer: a **`std`-only TCP server** (thread-per-acceptor +
//! bounded worker pool — no async runtime, mirroring the scoped-thread
//! scheduling of [`run_batch`](trajsearch_core::SearchEngine::run_batch))
//! speaking the *same* [`Query`](trajsearch_core::Query) /
//! [`Response`](trajsearch_core::Response) JSON wire format the core
//! already round-trips, in newline-delimited frames.
//!
//! What the server guarantees:
//!
//! * **Typed backpressure** — a bounded admission queue; when it is full,
//!   the reply is an `overloaded` [`ServerError`], never unbounded
//!   buffering ([`queue`]).
//! * **Per-query deadlines** — [`Query::deadline_ms`](trajsearch_core::Query::deadline_ms)
//!   starts counting at admission; expiry while queued or at a cooperative
//!   engine checkpoint returns a `deadline_exceeded` error, not a late
//!   answer ([`trajsearch_core::deadline`]).
//! * **Graceful drain** — shutdown stops admission but answers every
//!   admitted query before [`Server::serve`] returns.
//! * **Observability** — counters and queue/wall/CPU latency percentiles,
//!   live via [`ServerHandle::metrics`] or over the wire via a `stats`
//!   request ([`metrics`]); end-to-end query tracing (minor 3) — a
//!   `trace_id` on the query frame records per-phase
//!   [spans](trajsearch_obs) readable back via a `trace` request, a
//!   slow-query log captures threshold-crossing queries
//!   ([`ServerConfig::slow_query_threshold`]), and a `metrics_text`
//!   request renders Prometheus text exposition with per-phase log2
//!   latency histograms. Untraced frames are byte-identical to minor 2.
//!
//! Responses over the socket are **byte-identical** (matches and stats
//! counters) to in-process [`SearchEngine::run`](trajsearch_core::SearchEngine::run)
//! — the loopback equivalence suite in `tests/loopback.rs` enforces this
//! across both index layouts.
//!
//! ## Roles (PR 6)
//!
//! The same listener machinery serves two personalities:
//!
//! * **Query server / coordinator** — [`Server::serve`] over any
//!   [`QueryHandler`] (a [`SearchEngine`](trajsearch_core::SearchEngine)
//!   works as-is; a `trajsearch-distrib` coordinator adds typed
//!   [`degraded`](proto::DegradedInfo) replies when shards go missing).
//! * **Shard server** — [`Server::serve_shard`] over a [`ShardSource`]
//!   answers the `shard_*` RPCs ([`proto`]): the remote half of the
//!   [`PostingSource`](trajsearch_core::PostingSource) contract, with
//!   epoch and deadline guards ([`shard`]).
//!
//! Frames are versioned (`"v"`, [`proto::PROTO_MAJOR`]) with a `hello`
//! negotiation and a typed `unsupported_version` rejection; see the
//! [`proto`] module docs for the compatibility rule. Clients get typed
//! per-query [`QueryOutcome`]s and an opt-in, overloaded-only
//! [`RetryPolicy`] ([`client`]).
//!
//! ## Example
//!
//! ```
//! use std::thread;
//! use trajsearch_core::{EngineBuilder, Query};
//! use trajsearch_serve::{Client, Server, ServerConfig};
//! use traj::{Trajectory, TrajectoryStore};
//! use wed::models::Lev;
//!
//! let mut store = TrajectoryStore::new();
//! store.push(Trajectory::untimed(vec![0, 1, 2, 3, 4]));
//! let engine = EngineBuilder::new(Lev, &store, 8).build();
//!
//! let server = Server::bind(ServerConfig::default())?; // 127.0.0.1, ephemeral port
//! let handle = server.handle();
//! thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
//!     scope.spawn(|| server.serve(&engine));
//!
//!     let mut client = Client::connect(handle.local_addr())?;
//!     let query = Query::threshold(vec![1, 2], 0.5).deadline_ms(2_000).build()?;
//!     let response = client.query(&query)?;
//!     assert_eq!(response.matches.len(), 1);
//!
//!     handle.shutdown(); // drains in-flight queries, then serve() returns
//!     Ok(())
//! })?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod server;
pub mod shard;

pub use client::{Client, ClientError, HelloCaps, QueryOutcome, RetryPolicy};
pub use metrics::{LatencySummary, Metrics, MetricsSnapshot};
pub use proto::{
    DegradedInfo, Reply, Request, ServerError, ServerErrorKind, ShardInfo, SpanPage, TraceEntry,
    WireSpan, MAX_FRAME_BYTES, PROTO_MAJOR, PROTO_MINOR, SPAN_PAGE_MAX, SUPPORTED_METRICS,
};
pub use queue::{BoundedQueue, Pop, PushError};
pub use server::{Handled, QueryHandler, Server, ServerConfig, ServerHandle, DEFAULT_SINK_SPANS};
pub use shard::{IndexShardSource, ShardSource};
