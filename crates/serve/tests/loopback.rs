//! Loopback integration suite: the server's externally observable
//! semantics, end to end over real sockets.
//!
//! * **Equivalence** — every `Response` received over the socket is
//!   byte-identical (matches and stats counters) to in-process
//!   `SearchEngine::run_batch` on the same workload, across both index
//!   layouts.
//! * **Backpressure** — a full admission queue answers a typed
//!   `overloaded` error; nothing buffers without bound.
//! * **Deadlines** — an expired `deadline_ms` answers a typed
//!   `deadline_exceeded` error (queued or mid-execution), never a late
//!   answer.
//! * **Drain** — shutdown with in-flight queries answers every admitted
//!   query before `serve` returns.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{
    BatchOptions, EngineBuilder, IndexLayout, Metric, Parallelism, Query, Response,
    TemporalConstraint, TimeInterval, VerifyMode,
};
use trajsearch_serve::{Client, ClientError, Server, ServerConfig, ServerErrorKind, ServerHandle};
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 64;

/// Shuts the server down when dropped, so a failing assertion inside a
/// `thread::scope` unwinds into a clean server exit instead of a hang
/// (the scope joins the serving thread before propagating the panic).
struct ShutdownOnDrop(ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Synthetic store: `n` random walks of length `len` with increasing
/// timestamps, seeded for reproducibility.
fn store(n: usize, len: usize, seed: u64) -> TrajectoryStore {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut store = TrajectoryStore::new();
    for i in 0..n {
        let path: Vec<Sym> = (0..len)
            .map(|_| rng.gen_range(0..ALPHABET as u32))
            .collect();
        let t0 = (i * 7) as f64;
        let times: Vec<f64> = (0..len).map(|j| t0 + j as f64).collect();
        store.push(Trajectory::new(path, times));
    }
    store
}

/// A pattern copied out of the store (so matches exist), possibly perturbed.
fn pattern_from(store: &TrajectoryStore, rng: &mut ChaCha8Rng, len: usize) -> Vec<Sym> {
    let id = rng.gen_range(0..store.len() as u32);
    let path = store.get(id).path();
    let start = rng.gen_range(0..path.len().saturating_sub(len).max(1));
    let mut q: Vec<Sym> = path[start..(start + len).min(path.len())].to_vec();
    if rng.gen_range(0..2) == 1 && !q.is_empty() {
        let at = rng.gen_range(0..q.len());
        q[at] = rng.gen_range(0..ALPHABET as u32);
    }
    q
}

/// A mixed workload: thresholds (all verify modes), top-k, temporal and
/// in-query-parallel queries.
fn mixed_workload(store: &TrajectoryStore, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let q = pattern_from(store, &mut rng, 4 + i % 4);
            let tau = 1.0 + (i % 3) as f64 * 0.75;
            match i % 5 {
                0 => Query::threshold(q, tau).build().unwrap(),
                1 => Query::threshold(q, tau)
                    .verify(VerifyMode::Sw)
                    .build()
                    .unwrap(),
                2 => Query::top_k(q, 3, 0.5, 6.0).build().unwrap(),
                3 => Query::threshold(q, tau)
                    .verify(VerifyMode::Local)
                    .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 200.0)))
                    .temporal_filter(true)
                    .build()
                    .unwrap(),
                _ => Query::threshold(q, tau)
                    .parallelism(Parallelism::InQuery(2))
                    .build()
                    .unwrap(),
            }
        })
        .collect()
}

/// "Byte-identical" in the sense the wire can preserve: matches exactly
/// equal (ids, spans, bit-for-bit distances) and every deterministic stats
/// counter equal. Timings are execution-dependent and excluded.
fn assert_equivalent(got: &Response, want: &Response, ctx: &str) {
    assert_eq!(got.matches, want.matches, "{ctx}: matches diverged");
    let (g, w) = (&got.stats, &want.stats);
    assert_eq!(g.candidates, w.candidates, "{ctx}: candidates");
    assert_eq!(
        g.candidates_after_temporal, w.candidates_after_temporal,
        "{ctx}: candidates_after_temporal"
    );
    assert_eq!(
        g.candidates_deduped, w.candidates_deduped,
        "{ctx}: candidates_deduped"
    );
    assert_eq!(g.tsubseq_len, w.tsubseq_len, "{ctx}: tsubseq_len");
    assert_eq!(g.fallback, w.fallback, "{ctx}: fallback");
    assert_eq!(g.sw_columns, w.sw_columns, "{ctx}: sw_columns");
    assert_eq!(g.verify_cost, w.verify_cost, "{ctx}: verify_cost");
    assert_eq!(g.results, w.results, "{ctx}: results");
}

/// A query whose *cost* is a full exact scan of the store (Lev is
/// infeasible once `tau > |Q|`, forcing the fallback) but whose *response*
/// stays tiny: the temporal post-check discards almost every match after
/// the scan has already paid for them. The deterministic "slow query" for
/// deadline and drain tests — its runtime scales with the store, its reply
/// does not.
fn slow_query(deadline_ms: Option<u64>) -> Query {
    let pattern: Vec<Sym> = (0..8).map(|i| (i % ALPHABET) as u32).collect();
    let builder = Query::threshold(pattern, 8.5)
        .verify(VerifyMode::Sw)
        .temporal(TemporalConstraint::within(TimeInterval::new(0.0, 2.0)));
    match deadline_ms {
        Some(ms) => builder.deadline_ms(ms).build().unwrap(),
        None => builder.build().unwrap(),
    }
}

#[test]
fn loopback_responses_match_in_process_run_batch_across_layouts() {
    let store = store(120, 24, 0xA11CE);
    let workload = mixed_workload(&store, 25, 0xB0B);
    for (layout, layout_name) in [
        (IndexLayout::Single, "single"),
        (IndexLayout::Sharded(3), "sharded(3)"),
        (IndexLayout::Compact, "compact"),
    ] {
        let engine = EngineBuilder::new(Lev, &store, ALPHABET)
            .layout(layout)
            .build();
        let want = engine
            .run_batch(&workload, BatchOptions::with_threads(2))
            .expect("workload admissible");

        let server = Server::bind(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let handle = server.handle();
        std::thread::scope(|scope| {
            let guard = ShutdownOnDrop(handle.clone());
            let serving = scope.spawn(|| server.serve(&engine));

            let mut client = Client::connect(handle.local_addr()).expect("connect");
            // Pipelined batch: replies may arrive out of order, the client
            // restores submission order.
            let outcomes = client.query_batch(&workload).expect("transport ok");
            assert_eq!(outcomes.len(), workload.len());
            for (i, (got, want)) in outcomes.iter().zip(&want.responses).enumerate() {
                let got = got.response().expect("no rejections in this workload");
                assert_equivalent(got, want, &format!("{layout_name} query {i}"));
            }
            // Single-query path agrees too.
            let got = client.query(&workload[0]).expect("single query");
            assert_equivalent(&got, &want.responses[0], &format!("{layout_name} single"));

            let stats = client.stats().expect("stats over the wire");
            assert_eq!(stats.completed, workload.len() as u64 + 1);
            assert_eq!(stats.rejected_overload, 0);
            assert!(stats.wall.count >= stats.completed);

            drop(guard); // orderly shutdown
            let final_metrics = serving.join().expect("serve thread").expect("serve ok");
            assert_eq!(final_metrics.completed, workload.len() as u64 + 1);
            assert_eq!(final_metrics.queue_depth, 0, "drained");
        });
    }
}

/// Mixed-metric batches over the serve wire: the metric rides each query's
/// JSON frame (absent for WED), and every served response — `verify_cost`
/// included — is byte-identical to in-process `run_batch`.
#[test]
fn mixed_metric_batch_over_the_wire_matches_in_process() {
    let store = store(80, 20, 0x5EED);
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1CE);
    let workload: Vec<Query> = (0..12)
        .map(|i| {
            let q = pattern_from(&store, &mut rng, 4 + i % 3);
            let metric = match i % 4 {
                0 => Metric::Wed,
                1 => Metric::Dtw,
                2 => Metric::Lcss { eps: 0.0 },
                _ => Metric::Frechet,
            };
            Query::threshold(q, 1.0 + (i % 3) as f64)
                .metric(metric)
                .build()
                .unwrap()
        })
        .collect();
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let want = engine
        .run_batch(&workload, BatchOptions::with_threads(2))
        .expect("workload admissible");

    let server = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));

        let mut client = Client::connect(handle.local_addr()).expect("connect");
        let outcomes = client.query_batch(&workload).expect("transport ok");
        assert_eq!(outcomes.len(), workload.len());
        for (i, (got, want)) in outcomes.iter().zip(&want.responses).enumerate() {
            let got = got.response().expect("metric queries answered cleanly");
            assert_equivalent(got, want, &format!("mixed-metric query {i}"));
        }

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

#[test]
fn full_admission_queue_rejects_with_typed_overload() {
    let store = store(40, 16, 7);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    // Capacity 0: every query meets a full queue — the deterministic
    // worst-case overload.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        let err = client.query(&q).expect_err("must be rejected");
        match err {
            ClientError::Server(e) => {
                assert_eq!(e.kind, ServerErrorKind::Overloaded);
                assert!(e.message.contains("capacity 0"), "got {e}");
            }
            other => panic!("expected a typed overload, got {other}"),
        }
        // Batch submission: every outcome is an independent typed
        // rejection; the transport stays healthy.
        let outcomes = client
            .query_batch(&vec![q.clone(); 8])
            .expect("transport ok");
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.rejection(), Some(e) if e.kind == ServerErrorKind::Overloaded)));

        let stats = client.stats().expect("stats");
        assert_eq!(stats.rejected_overload, 9);
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.queue_capacity, 0);

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

#[test]
fn expired_deadline_returns_typed_timeout_not_a_slow_answer() {
    // Big enough that the slow query's store-wide scan takes well over a
    // millisecond (the scan checks its deadline between trajectories).
    let store = store(1200, 64, 0xDEAD);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // 1ms against a store-wide scan: expires while queued or at a
        // cooperative checkpoint — either way the reply is typed.
        let err = client
            .query(&slow_query(Some(1)))
            .expect_err("must time out");
        match err {
            ClientError::Server(e) => assert_eq!(e.kind, ServerErrorKind::DeadlineExceeded),
            other => panic!("expected a typed timeout, got {other}"),
        }

        // The same query with a generous budget completes fine.
        let ok = client
            .query(&slow_query(Some(120_000)))
            .expect("generous deadline");
        assert!(ok.stats.fallback, "slow query exercises the fallback scan");

        // Pipelined mix: the timeout of one query does not disturb the
        // others' responses.
        let fast = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        let outcomes = client
            .query_batch(&[fast.clone(), slow_query(Some(1)), fast])
            .expect("transport ok");
        assert!(outcomes[0].is_answered());
        assert!(matches!(
            outcomes[1].rejection(),
            Some(e) if e.kind == ServerErrorKind::DeadlineExceeded
        ));
        assert!(outcomes[2].is_answered());

        let stats = client.stats().expect("stats");
        assert!(stats.timed_out >= 2, "got {}", stats.timed_out);
        assert!(stats.completed >= 3);

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let store = store(1000, 64, 42);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 1,
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    let addr = handle.local_addr();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(addr).expect("connect");

        // Pipeline several store-wide scans, then shut down while most of
        // them are still queued behind the single worker.
        const N: usize = 6;
        let workload = vec![slow_query(None); N];
        let shutdown_handle = handle.clone();
        let drainer = scope.spawn(move || {
            // Wait until every query is admitted (admission happens in the
            // reader, well before the worker drains them), then pull the
            // plug. Returns whether shutdown really caught work in flight;
            // asserted after the joins so a failure cannot hang the scope.
            for _ in 0..2000 {
                if shutdown_handle.metrics().admitted >= N as u64 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let caught_in_flight = shutdown_handle.metrics().completed < N as u64;
            shutdown_handle.shutdown();
            caught_in_flight
        });
        // Every admitted query still gets its real answer.
        let outcomes = client.query_batch(&workload).expect("transport ok");
        assert_eq!(outcomes.len(), N);
        for (i, o) in outcomes.iter().enumerate() {
            let r = o
                .response()
                .unwrap_or_else(|| panic!("query {i} not answered"));
            assert!(r.stats.fallback);
        }
        let caught_in_flight = drainer.join().expect("drainer");

        drop(guard);
        let final_metrics = serving.join().expect("serve thread").expect("serve ok");
        assert!(
            caught_in_flight,
            "shutdown must have caught queries in flight"
        );
        assert_eq!(final_metrics.completed, N as u64, "all in-flight drained");
        assert_eq!(final_metrics.queue_depth, 0);

        // The drained server is really gone: new connections are refused.
        assert!(Client::connect(addr).is_err(), "listener must be closed");
    });
}

#[test]
fn queries_after_shutdown_are_rejected_as_shutting_down() {
    let store = store(400, 48, 43);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // Complete one query so the connection is known-good, then close
        // admission and try another on the same connection.
        let fast = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        client.query(&fast).expect("pre-shutdown query");
        handle.shutdown();
        let err = client.query(&fast).expect_err("admission is closed");
        match err {
            // The queue rejects atomically: never admitted, typed refusal.
            ClientError::Server(e) => assert_eq!(e.kind, ServerErrorKind::ShuttingDown),
            // Or the reader already exited on the shutdown tick and the
            // connection dropped — an acceptable transport-level refusal.
            ClientError::Io(_) | ClientError::Protocol(_) => {}
            ClientError::Degraded(d) => panic!("unexpected degraded reply: {d}"),
        }
        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

#[test]
fn malformed_and_invalid_frames_get_typed_errors() {
    use std::io::{BufRead, BufReader, Write};
    let store = store(30, 16, 9);
    // No temporal postings in the index: a temporal-postings query is a
    // typed engine-admission failure.
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));

        let mut raw = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut read_line = || {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            line
        };

        // Unparseable frame → malformed, unattributed.
        raw.write_all(b"this is not json\n").expect("write");
        let line = read_line();
        assert!(
            line.contains("\"malformed\"") && line.contains("\"id\":null"),
            "{line}"
        );

        // Parseable envelope, bad query → invalid_query, attributed.
        raw.write_all(b"{\"type\":\"query\",\"id\":5,\"query\":{\"pattern\":[]}}\n")
            .expect("write");
        let line = read_line();
        assert!(
            line.contains("\"invalid_query\"") && line.contains("\"id\":5"),
            "{line}"
        );

        // Valid query shape, engine-admission failure → invalid_query.
        let q = Query::threshold(vec![1, 2], 1.0)
            .temporal(TemporalConstraint::overlaps(TimeInterval::new(0.0, 5.0)))
            .temporal_postings(true)
            .build()
            .unwrap();
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        let err = client
            .query(&q)
            .expect_err("index has no temporal postings");
        match err {
            ClientError::Server(e) => {
                assert_eq!(e.kind, ServerErrorKind::InvalidQuery);
                assert!(e.message.contains("temporal postings"), "{e}");
            }
            other => panic!("expected invalid_query, got {other}"),
        }

        let stats = client.stats().expect("stats");
        assert!(stats.malformed >= 1);
        assert!(stats.invalid >= 2);

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}
