//! Tracing integration suite (protocol minor 3), over real sockets:
//!
//! * **Traced queries** — a `trace_id` on the query frame yields a
//!   readable per-phase timeline (`queue_wait`, `query`, `filter`,
//!   `verify`, …) via the `trace` request, all spans under the client's
//!   id, with the phase spans nested inside the root `query` span.
//! * **Result neutrality** — a traced query's matches and deterministic
//!   stats are byte-identical to the same query untraced.
//! * **Slow-query log** — with a threshold armed, every crossing query is
//!   captured (spans and all) and readable via an id-less `trace` request,
//!   even when the client sent no `trace_id`.
//! * **Exposition** — `metrics_text` renders Prometheus text with the
//!   admission counters and per-phase histograms.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{EngineBuilder, Query, VerifyMode};
use trajsearch_serve::{Client, Server, ServerConfig, ServerHandle, TraceEntry};
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 64;

struct ShutdownOnDrop(ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn store(n: usize, len: usize, seed: u64) -> TrajectoryStore {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut store = TrajectoryStore::new();
    for i in 0..n {
        let path: Vec<Sym> = (0..len)
            .map(|_| rng.gen_range(0..ALPHABET as u32))
            .collect();
        let t0 = (i * 7) as f64;
        let times: Vec<f64> = (0..len).map(|j| t0 + j as f64).collect();
        store.push(Trajectory::new(path, times));
    }
    store
}

fn names(entry: &TraceEntry) -> Vec<&str> {
    entry.spans.iter().map(|s| s.name.as_str()).collect()
}

#[test]
fn traced_query_yields_a_phase_timeline_and_identical_results() {
    let store = store(60, 16, 11);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let query = Query::threshold(vec![1, 2, 3], 2.0)
            .verify(VerifyMode::Trie)
            .build()
            .unwrap();
        let untraced = client.query(&query).expect("untraced query");
        let traced = client.query_traced(&query, 777).expect("traced query");

        // Tracing must not perturb the answer: matches and deterministic
        // counters byte-identical to the untraced run.
        assert_eq!(traced.matches, untraced.matches);
        assert_eq!(traced.stats.candidates, untraced.stats.candidates);
        assert_eq!(traced.stats.verify_cost, untraced.stats.verify_cost);
        assert_eq!(traced.stats.results, untraced.stats.results);

        // The timeline: one entry under the client's id, phases present,
        // engine phases nested under the root query span.
        let entries = client.trace(Some(777)).expect("trace fetch");
        assert_eq!(entries.len(), 1, "one process, one timeline");
        let entry = &entries[0];
        assert_eq!(entry.trace_id, 777);
        let got = names(entry);
        for phase in ["queue_wait", "query", "filter", "verify"] {
            assert!(got.contains(&phase), "missing {phase} in {got:?}");
        }
        let root = entry
            .spans
            .iter()
            .find(|s| s.name == "query")
            .expect("root span");
        assert_eq!(root.parent_id, 0, "query is a root span");
        let filter = entry.spans.iter().find(|s| s.name == "filter").unwrap();
        assert_eq!(filter.parent_id, root.span_id, "filter nests under query");
        for s in &entry.spans {
            assert!(s.span_id != 0, "span ids are never 0");
        }
        // Spans come back sorted by start.
        let starts: Vec<u64> = entry.spans.iter().map(|s| s.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "spans sorted by start time");

        // An unknown trace id answers cleanly with no entries.
        assert!(client.trace(Some(999_999)).expect("empty fetch").is_empty());

        drop(guard);
        serving.join().expect("join").expect("serve ok");
    });
}

#[test]
fn slow_query_log_captures_untraced_queries_when_armed() {
    let store = store(40, 12, 5);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 1,
        // Zero threshold: every completed query counts as slow.
        slow_query_threshold: Some(Duration::ZERO),
        slow_log_capacity: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // Plain queries, no trace_id on the wire.
        for sym in [1u32, 2, 3] {
            let q = Query::threshold(vec![sym, sym + 1], 1.0).build().unwrap();
            client.query(&q).expect("query");
        }
        let entries = client.trace(None).expect("slow log fetch");
        // Capacity 2: three slow queries, the oldest evicted.
        assert_eq!(entries.len(), 2, "ring keeps the last N");
        for entry in &entries {
            assert!(entry.trace_id != 0, "server allocated an internal id");
            assert!(entry.query_id.is_some(), "captures name the wire query");
            assert!(
                names(entry).contains(&"query"),
                "captures carry spans: {:?}",
                names(entry)
            );
        }

        drop(guard);
        serving.join().expect("join").expect("serve ok");
    });
}

#[test]
fn slow_log_disabled_answers_an_empty_log() {
    let store = store(10, 8, 3);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");
        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        client.query(&q).expect("query");
        assert!(client.trace(None).expect("fetch").is_empty());
        drop(guard);
        serving.join().expect("join").expect("serve ok");
    });
}

#[test]
fn metrics_text_renders_prometheus_exposition() {
    let store = store(30, 12, 9);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let q = Query::threshold(vec![4, 5, 6], 1.5).build().unwrap();
        client.query(&q).expect("query");
        let text = client.metrics_text().expect("metrics_text");

        assert!(text.contains("# TYPE trajsearch_queries_admitted_total counter"));
        assert!(text.contains("trajsearch_queries_completed_total 1"));
        assert!(text.contains("# TYPE trajsearch_query_wall_ns histogram"));
        assert!(text.contains("trajsearch_queue_wait_ns_count 1"));
        assert!(text.contains("trajsearch_query_wall_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("trajsearch_workers 1"));
        // The wire reply and the in-process handle agree on structure
        // (counts may move between calls, names must not).
        let local = handle.metrics_text();
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            assert!(local.contains(line), "missing {line}");
        }

        drop(guard);
        serving.join().expect("join").expect("serve ok");
    });
}
