//! The versioned shard-RPC surface, hardened the same way `json_hardening`
//! hardens the query codec, plus its end-to-end loopback semantics.
//!
//! * **Codec** — every shard-RPC request and reply frame round-trips
//!   through its JSON rendering exactly; truncated frames classify as
//!   typed `malformed` (never a panic); an unknown protocol major is a
//!   typed `unsupported_version` — the bytes were fine, the dialect was
//!   not — while an absent `v` stays major-1 back-compatible.
//! * **Shard role** — `serve_shard` answers the `PostingSource` contract
//!   byte-identically to the local `IndexShard`, and every guard (epoch,
//!   deadline, wrong role) is a typed error that leaves the connection
//!   usable.
//! * **Retry** — the client retry policy resubmits `overloaded`
//!   rejections only: never `deadline_exceeded`, never a success (a
//!   counting handler proves queries are applied exactly once), and an
//!   admission rejection proves the server did no work to re-apply.
//! * **Degraded** — a handler answering `Handled::Degraded` surfaces as a
//!   typed [`QueryOutcome::Degraded`] carrying the exact `DegradedInfo`,
//!   counts in the server's `degraded` metric, and fails the strict
//!   single-query path as [`ClientError::Degraded`].

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{
    Deadline, EngineBuilder, IndexShard, Query, TemporalConstraint, TimeInterval, VerifyMode,
};
use trajsearch_serve::{
    Client, ClientError, DegradedInfo, Handled, IndexShardSource, QueryHandler, QueryOutcome,
    Reply, Request, RetryPolicy, Server, ServerConfig, ServerError, ServerErrorKind, ServerHandle,
    ShardInfo, ShardSource, SpanPage, PROTO_MAJOR, PROTO_MINOR, SUPPORTED_METRICS,
};
use wed::models::Lev;
use wed::Sym;

const ALPHABET: usize = 16;

/// Shuts the server down when dropped so a failing assertion inside a
/// `thread::scope` unwinds into a clean exit instead of a hang.
struct ShutdownOnDrop(ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Deterministic store (no RNG): enough symbol overlap that every list is
/// non-trivial, increasing timestamps so the temporal orderings differ
/// from build order.
fn small_store(n: usize, len: usize) -> TrajectoryStore {
    let mut store = TrajectoryStore::new();
    for i in 0..n {
        let path: Vec<Sym> = (0..len)
            .map(|j| ((i * 3 + j * 5 + i * j) % ALPHABET) as u32)
            .collect();
        let t0 = (i * 11) as f64;
        let times: Vec<f64> = (0..len).map(|j| t0 + j as f64).collect();
        store.push(Trajectory::new(path, times));
    }
    store
}

/// Random store for the timing-sensitive tests (same idiom as `loopback`).
fn big_store(n: usize, len: usize, seed: u64) -> TrajectoryStore {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut store = TrajectoryStore::new();
    for i in 0..n {
        let path: Vec<Sym> = (0..len)
            .map(|_| rng.gen_range(0..ALPHABET as u32))
            .collect();
        let t0 = (i * 7) as f64;
        let times: Vec<f64> = (0..len).map(|j| t0 + j as f64).collect();
        store.push(Trajectory::new(path, times));
    }
    store
}

/// A query whose cost is a store-wide fallback scan but whose reply stays
/// tiny — the deterministic slow query (see `loopback`).
fn slow_query(deadline_ms: Option<u64>) -> Query {
    let pattern: Vec<Sym> = (0..8).map(|i| (i % ALPHABET) as u32).collect();
    let builder = Query::threshold(pattern, 8.5)
        .verify(VerifyMode::Sw)
        .temporal(TemporalConstraint::within(TimeInterval::new(0.0, 2.0)));
    match deadline_ms {
        Some(ms) => builder.deadline_ms(ms).build().unwrap(),
        None => builder.build().unwrap(),
    }
}

/// One of each data RPC, for mutation-style properties.
fn sample_request(which: usize) -> Request {
    match which % 4 {
        0 => Request::ShardFreqs {
            id: 7,
            epoch: 3,
            deadline_ms: Some(250),
            trace_id: None,
            syms: vec![0, 5, 11],
        },
        1 => Request::ShardPostings {
            id: 8,
            epoch: 3,
            deadline_ms: None,
            trace_id: Some(9),
            syms: vec![2, 2, 9],
        },
        2 => Request::ShardDepartingBy {
            id: 9,
            epoch: 3,
            deadline_ms: Some(1000),
            trace_id: None,
            sym: 4,
            t_max: 123.5,
        },
        _ => Request::ShardSpans {
            id: 10,
            epoch: 3,
            deadline_ms: None,
            trace_id: None,
            start: 64,
            count: 32,
        },
    }
}

// ---------------------------------------------------------------------------
// Codec: round trips and hostile-input classification
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shard_request_frames_round_trip(
        id in 0u64..1_000_000_000,
        epoch in 0u64..1_000_000,
        deadline in 0u64..100_000,
        has_deadline in 0usize..2,
        syms in proptest::collection::vec(0u32..4096, 0..12),
        sym in 0u32..4096,
        t_raw in 0i64..8_000_000,
        start in 0u64..1_000_000,
        count in 0u64..1_000_000,
        major in 0u32..9,
        minor in 0u32..9,
        has_trace in 0usize..2,
        trace in 1u64..1_000_000_000_000,
    ) {
        let deadline_ms = (has_deadline == 1).then_some(deadline);
        let trace_id = (has_trace == 1).then_some(trace);
        // Quarters exercise non-integer departures; the codec's `{x}`
        // rendering is shortest-round-trip, so equality is exact.
        let t_max = t_raw as f64 * 0.25 - 1000.0;
        let frames = vec![
            Request::ShardFreqs { id, epoch, deadline_ms, trace_id, syms: syms.clone() },
            Request::ShardPostings { id, epoch, deadline_ms, trace_id, syms: syms.clone() },
            Request::ShardDepartingBy { id, epoch, deadline_ms, trace_id, sym, t_max },
            Request::ShardSpans { id, epoch, deadline_ms, trace_id, start, count },
            Request::ShardInfo { id },
            Request::Hello { id, major, minor },
        ];
        for frame in frames {
            let text = frame.to_json();
            prop_assert!(!text.contains('\n'), "frames must stay single-line");
            let back = Request::from_json(&text).map_err(|(_, e)| e.to_string());
            prop_assert_eq!(back, Ok(frame));
        }
    }

    #[test]
    fn shard_reply_frames_round_trip(
        id in 0u64..1_000_000_000,
        freqs in proptest::collection::vec(0u32..1_000_000, 0..12),
        pairs in proptest::collection::vec((0u32..100_000, 0u32..256), 0..12),
        deps in proptest::collection::vec(0i64..4_000_000, 0..12),
        start in 0u64..10_000,
        shards in proptest::collection::vec(0u32..64, 0..6),
        major in 0u32..9,
        minor in 0u32..9,
    ) {
        let entries: Vec<(f64, (u32, u32))> = deps
            .iter()
            .zip(pairs.iter().cycle())
            .map(|(&d, &p)| (d as f64 * 0.5, p))
            .collect();
        let departures: Vec<f64> = deps.iter().map(|&d| d as f64 * 0.25).collect();
        let arrivals: Vec<f64> = departures.iter().map(|d| d + 3.5).collect();
        let mut missing = shards.clone();
        missing.sort_unstable();
        missing.dedup();
        // Both hello shapes: the legacy empty list (field omitted on the
        // wire) and an advertised capability list.
        let metric_lists: [Vec<String>; 2] = [
            Vec::new(),
            vec!["wed".to_string(), "dtw".to_string()],
        ];
        let frames = vec![
            Reply::Hello { id, major, minor, metrics: metric_lists[(minor % 2) as usize].clone() },
            Reply::ShardInfo {
                id,
                info: ShardInfo {
                    shard_id: major,
                    num_shards: major + 1,
                    epoch: start,
                    alphabet_size: 4096,
                    local_trajectories: start / 2,
                    num_trajectories: start,
                    total_postings: id,
                    size_bytes: id * 2,
                    has_temporal_postings: minor % 2 == 0,
                },
            },
            Reply::ShardFreqs { id, freqs: freqs.clone() },
            Reply::ShardPostings { id, lists: vec![pairs.clone(), Vec::new()] },
            Reply::ShardDepartingBy { id, entries },
            Reply::ShardSpans {
                id,
                page: SpanPage {
                    start,
                    total: start + departures.len() as u64,
                    departures,
                    arrivals,
                },
            },
            Reply::Degraded {
                id,
                degraded: DegradedInfo {
                    missing_shards: missing,
                    reason: "shard unreachable: connection reset".into(),
                },
                response: None,
            },
        ];
        for frame in frames {
            let text = frame.to_json();
            prop_assert!(!text.contains('\n'), "frames must stay single-line");
            prop_assert_eq!(Reply::from_json(&text), Ok(frame));
        }
    }

    #[test]
    fn truncated_shard_frames_classify_as_malformed(
        which in 0usize..4,
        cut in 0usize..4096,
    ) {
        let full = sample_request(which).to_json();
        // The frame opens with '{', so every strict prefix is incomplete.
        let cut = cut % full.len();
        match Request::from_json(&full[..cut]) {
            Err((_, e)) => prop_assert_eq!(e.kind, ServerErrorKind::Malformed),
            Ok(r) => prop_assert!(false, "strict prefix of len {} parsed: {:?}", cut, r),
        }
    }

    #[test]
    fn byte_flipped_shard_frames_never_panic(
        which in 0usize..4,
        at in 0usize..4096,
        flip in 0usize..1024,
    ) {
        const SOUP: &[u8] = br#"{}[]",:.-+eE0123456789 truefalsenul\"abc"#;
        let mut bytes = sample_request(which).to_json().into_bytes();
        let at = at % bytes.len();
        bytes[at] = SOUP[flip % SOUP.len()];
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Typed results only; a panic fails the property by construction.
        let _ = Request::from_json(&text);
        let _ = Reply::from_json(&text);
    }
}

#[test]
fn unknown_major_is_unsupported_version_not_malformed() {
    for text in [
        r#"{"v":2,"type":"shard_freqs","id":9,"epoch":1,"syms":[1]}"#,
        r#"{"v":99,"type":"hello","id":9,"major":99,"minor":0}"#,
        r#"{"v":2,"type":"no_such_rpc","id":9}"#,
    ] {
        match Request::from_json(text) {
            Err((id, e)) => {
                assert_eq!(id, Some(9), "id extracted so the error can be addressed");
                assert_eq!(e.kind, ServerErrorKind::UnsupportedVersion, "for {text}");
            }
            Ok(r) => panic!("future-major frame decoded as {r:?}"),
        }
    }
    // An absent "v" is the major-1 back-compat path, not an error.
    assert_eq!(
        Request::from_json(r#"{"type":"shard_info","id":3}"#),
        Ok(Request::ShardInfo { id: 3 })
    );
    // A non-numeric "v" is bad bytes, not a future dialect.
    match Request::from_json(r#"{"v":"two","type":"shard_info","id":3}"#) {
        Err((_, e)) => assert_eq!(e.kind, ServerErrorKind::Malformed),
        Ok(r) => panic!("non-numeric version decoded as {r:?}"),
    }
}

// ---------------------------------------------------------------------------
// Shard role over a real socket
// ---------------------------------------------------------------------------

/// One split-phase RPC round trip on an established client.
fn rpc(client: &mut Client, make: impl FnOnce(u64) -> Request) -> Reply {
    let id = client.allocate_id();
    client.send_request(&make(id)).expect("send");
    client.flush().expect("flush");
    let reply = client.recv_reply().expect("recv");
    assert_eq!(reply.id(), Some(id), "replies echo the request id");
    reply
}

#[test]
fn serve_shard_answers_the_posting_source_contract_over_the_wire() {
    const EPOCH: u64 = 42;
    let store = small_store(24, 12);
    let mut shard = IndexShard::build(&store, ALPHABET, 1, 3);
    shard.enable_temporal_postings();
    let source = IndexShardSource::new(&shard, EPOCH);

    let server = Server::bind(ServerConfig::default()).expect("bind shard server");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve_shard(&source));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // Version negotiation, then self-description — the same opening
        // handshake RemoteShards performs.
        assert_eq!(client.hello().expect("hello"), (PROTO_MAJOR, PROTO_MINOR));
        assert_eq!(client.shard_info().expect("shard_info"), source.info());

        // Every data RPC answers byte-identically to the local shard,
        // including an out-of-alphabet symbol (empty, not an error).
        let syms: Vec<Sym> = (0..ALPHABET as u32).chain([999]).collect();
        match rpc(&mut client, |id| Request::ShardFreqs {
            id,
            epoch: EPOCH,
            deadline_ms: Some(30_000),
            trace_id: None,
            syms: syms.clone(),
        }) {
            Reply::ShardFreqs { freqs, .. } => assert_eq!(freqs, source.freqs(&syms)),
            other => panic!("expected freqs, got {other:?}"),
        }
        match rpc(&mut client, |id| Request::ShardPostings {
            id,
            epoch: EPOCH,
            deadline_ms: Some(30_000),
            trace_id: None,
            syms: syms.clone(),
        }) {
            Reply::ShardPostings { lists, .. } => assert_eq!(lists, source.postings(&syms)),
            other => panic!("expected postings, got {other:?}"),
        }
        for (sym, t_max) in [(1u32, 60.0), (5, 1e9), (9, -1.0)] {
            match rpc(&mut client, |id| Request::ShardDepartingBy {
                id,
                epoch: EPOCH,
                deadline_ms: None,
                trace_id: None,
                sym,
                t_max,
            }) {
                Reply::ShardDepartingBy { entries, .. } => assert_eq!(
                    entries,
                    source.departing_by(sym, t_max).expect("temporal enabled"),
                    "sym {sym} t_max {t_max}"
                ),
                other => panic!("expected departing prefix, got {other:?}"),
            }
        }
        // Spans, paged with a deliberately tiny page size: reassembling the
        // pages yields the full local table.
        let all = source.spans(0, u64::MAX);
        let mut departures = Vec::new();
        let mut arrivals = Vec::new();
        while (departures.len() as u64) < all.total {
            let at = departures.len() as u64;
            match rpc(&mut client, |id| Request::ShardSpans {
                id,
                epoch: EPOCH,
                deadline_ms: Some(30_000),
                trace_id: None,
                start: at,
                count: 3,
            }) {
                Reply::ShardSpans { page, .. } => {
                    assert_eq!(page.start, at);
                    assert_eq!(page.total, all.total);
                    assert!(!page.departures.is_empty(), "pages must make progress");
                    departures.extend(page.departures);
                    arrivals.extend(page.arrivals);
                }
                other => panic!("expected a span page, got {other:?}"),
            }
        }
        assert_eq!(departures, all.departures);
        assert_eq!(arrivals, all.arrivals);

        // Guards, in order: stale epoch, expired deadline, wrong role.
        // Each is a typed error — and the connection survives all three.
        match rpc(&mut client, |id| Request::ShardFreqs {
            id,
            epoch: EPOCH + 1,
            deadline_ms: None,
            trace_id: None,
            syms: vec![1],
        }) {
            Reply::Error { error, .. } => assert_eq!(error.kind, ServerErrorKind::EpochMismatch),
            other => panic!("expected epoch mismatch, got {other:?}"),
        }
        // A zero budget has always already expired — the deterministic
        // deadline hook.
        match rpc(&mut client, |id| Request::ShardFreqs {
            id,
            epoch: EPOCH,
            deadline_ms: Some(0),
            trace_id: None,
            syms: vec![1],
        }) {
            Reply::Error { error, .. } => {
                assert_eq!(error.kind, ServerErrorKind::DeadlineExceeded)
            }
            other => panic!("expected deadline exceeded, got {other:?}"),
        }
        let query = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        match rpc(&mut client, |id| Request::Query {
            id,
            query: query.clone(),
            trace_id: None,
        }) {
            Reply::Error { error, .. } => {
                assert_eq!(error.kind, ServerErrorKind::InvalidQuery);
                assert!(error.message.contains("coordinator"), "got {error}");
            }
            other => panic!("expected a wrong-role error, got {other:?}"),
        }
        match rpc(&mut client, |id| Request::ShardFreqs {
            id,
            epoch: EPOCH,
            deadline_ms: None,
            trace_id: None,
            syms: vec![1],
        }) {
            Reply::ShardFreqs { freqs, .. } => {
                assert_eq!(
                    freqs,
                    source.freqs(&[1]),
                    "connection survives typed errors"
                )
            }
            other => panic!("expected freqs after errors, got {other:?}"),
        }

        // The role-independent surface works on shard servers too, and the
        // dispositions landed in the right counters.
        let stats = client.stats().expect("stats on a shard server");
        assert!(stats.completed >= 4, "data RPCs count as completed");
        assert_eq!(stats.timed_out, 1);
        assert!(
            stats.invalid >= 2,
            "epoch + wrong-role, got {}",
            stats.invalid
        );

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

/// The capability half of the handshake (protocol minor 2): a server
/// advertises its metric list on the hello reply; one configured not to
/// (simulating a pre-metrics build, which never sent the field) yields
/// empty caps that [`HelloCaps::supports`] reads as WED-only.
#[test]
fn hello_advertises_metric_capabilities() {
    let store = small_store(8, 6);
    let shard = IndexShard::build(&store, ALPHABET, 0, 1);
    let source = IndexShardSource::new(&shard, 1);

    for advertise in [true, false] {
        let server = Server::bind(ServerConfig {
            advertise_metrics: advertise,
            ..ServerConfig::default()
        })
        .expect("bind shard server");
        let handle = server.handle();
        std::thread::scope(|scope| {
            let guard = ShutdownOnDrop(handle.clone());
            let serving = scope.spawn(|| server.serve_shard(&source));
            let mut client = Client::connect(handle.local_addr()).expect("connect");

            let caps = client.hello_caps().expect("hello");
            assert_eq!((caps.major, caps.minor), (PROTO_MAJOR, PROTO_MINOR));
            if advertise {
                assert_eq!(caps.metrics, SUPPORTED_METRICS.map(String::from));
                for metric in SUPPORTED_METRICS {
                    assert!(caps.supports(metric), "advertised {metric}");
                }
            } else {
                assert!(caps.metrics.is_empty(), "legacy hello has no list");
                assert!(caps.supports("wed"), "legacy servers still do WED");
                assert!(!caps.supports("dtw"), "…and nothing else");
            }
            // The tuple-only negotiation entry is caps with the list
            // dropped — old call sites keep working against both shapes.
            assert_eq!(client.hello().expect("hello"), (PROTO_MAJOR, PROTO_MINOR));

            drop(guard);
            serving.join().expect("serve thread").expect("serve ok");
        });
    }
}

#[test]
fn query_servers_refuse_shard_rpcs_with_a_typed_error() {
    let store = small_store(24, 12);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        match rpc(&mut client, |id| Request::ShardFreqs {
            id,
            epoch: 0,
            deadline_ms: None,
            trace_id: None,
            syms: vec![1],
        }) {
            Reply::Error { error, .. } => {
                assert_eq!(error.kind, ServerErrorKind::InvalidQuery);
                assert!(error.message.contains("shard"), "got {error}");
            }
            other => panic!("expected a wrong-role error, got {other:?}"),
        }
        // The refusal is per-frame: ordinary queries still answer.
        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        client.query(&q).expect("queries unaffected");

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

// ---------------------------------------------------------------------------
// Retry policy: what is resubmitted, and what never is
// ---------------------------------------------------------------------------

/// Counts handler invocations — the "applied exactly once" probe.
struct Counting<'h, H: QueryHandler> {
    inner: &'h H,
    calls: AtomicU64,
}

impl<'h, H: QueryHandler> Counting<'h, H> {
    fn new(inner: &'h H) -> Counting<'h, H> {
        Counting {
            inner,
            calls: AtomicU64::new(0),
        }
    }
}

impl<H: QueryHandler> QueryHandler for Counting<'_, H> {
    fn handle(&self, query: &Query, deadline: Deadline) -> Handled {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.handle(query, deadline)
    }
}

#[test]
fn retry_predicate_admits_overload_only() {
    let policy = RetryPolicy::new().max_attempts(3);
    assert!(policy.retries(&ServerError::new(ServerErrorKind::Overloaded, "")));
    for kind in [
        ServerErrorKind::DeadlineExceeded,
        ServerErrorKind::ShuttingDown,
        ServerErrorKind::InvalidQuery,
        ServerErrorKind::Malformed,
        ServerErrorKind::UnsupportedVersion,
        ServerErrorKind::EpochMismatch,
    ] {
        assert!(
            !policy.retries(&ServerError::new(kind, "")),
            "{kind:?} must never be retried"
        );
    }
    // The builder clamps to at least one attempt, and a single-attempt
    // policy retries nothing at all.
    assert_eq!(RetryPolicy::new().max_attempts(0).attempts(), 1);
    assert!(!RetryPolicy::new().retries(&ServerError::new(ServerErrorKind::Overloaded, "")));
}

#[test]
fn overload_is_retried_to_the_attempt_cap_without_applying_work() {
    let store = small_store(24, 12);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let counting = Counting::new(&engine);
    // Capacity 0: every attempt meets a full queue — retries are visible
    // as admission rejections, and the handler can never run.
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&counting));
        let mut client = Client::connect(handle.local_addr())
            .expect("connect")
            .with_retry_policy(
                RetryPolicy::new()
                    .max_attempts(3)
                    .backoff(Duration::from_millis(1)),
            );

        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        let outcome = client.query_batch(&[q]).expect("transport ok").remove(0);
        assert!(
            matches!(outcome.rejection(), Some(e) if e.kind == ServerErrorKind::Overloaded),
            "exhausted retries surface the final typed overload: {outcome:?}"
        );
        let stats = client.stats().expect("stats");
        assert_eq!(stats.rejected_overload, 3, "initial attempt + 2 retries");
        assert_eq!(stats.admitted, 0);
        assert_eq!(counting.calls.load(Ordering::Relaxed), 0, "no work applied");

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

#[test]
fn successful_queries_are_applied_exactly_once_under_a_retry_policy() {
    let store = small_store(24, 12);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let counting = Counting::new(&engine);
    let server = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&counting));
        let mut client = Client::connect(handle.local_addr())
            .expect("connect")
            .with_retry_policy(RetryPolicy::new().max_attempts(5));

        // A non-idempotent-looking mix (different patterns, thresholds,
        // top-k): an aggressive retry policy must not re-apply any of it.
        let workload: Vec<Query> = (0..9)
            .map(|i| {
                let q = vec![(i % ALPHABET) as u32, ((i + 1) % ALPHABET) as u32];
                if i % 3 == 0 {
                    Query::top_k(q, 2, 0.5, 4.0).build().unwrap()
                } else {
                    Query::threshold(q, 1.0 + (i % 2) as f64).build().unwrap()
                }
            })
            .collect();
        let outcomes = client.query_batch(&workload).expect("transport ok");
        assert!(outcomes.iter().all(QueryOutcome::is_answered));
        assert_eq!(
            counting.calls.load(Ordering::Relaxed),
            workload.len() as u64,
            "each query applied exactly once"
        );
        let stats = client.stats().expect("stats");
        assert_eq!(stats.admitted, workload.len() as u64);

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

#[test]
fn deadline_exceeded_is_never_retried() {
    // Big enough that the slow query's store-wide scan outlives a 1ms
    // budget (checked at cooperative checkpoints).
    let store = big_store(1200, 64, 0xDEAD);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let counting = Counting::new(&engine);
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&counting));
        let mut client = Client::connect(handle.local_addr())
            .expect("connect")
            .with_retry_policy(
                RetryPolicy::new()
                    .max_attempts(4)
                    .backoff(Duration::from_millis(1)),
            );

        let outcome = client
            .query_batch(&[slow_query(Some(1))])
            .expect("transport ok")
            .remove(0);
        assert!(
            matches!(outcome.rejection(), Some(e) if e.kind == ServerErrorKind::DeadlineExceeded),
            "got {outcome:?}"
        );
        let stats = client.stats().expect("stats");
        assert_eq!(stats.timed_out, 1, "one attempt, not four");
        assert_eq!(stats.admitted, 1, "the timeout was not resubmitted");

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}

// ---------------------------------------------------------------------------
// Degraded replies end to end
// ---------------------------------------------------------------------------

/// Wraps a handler so every successful answer comes back degraded — the
/// single-process stand-in for a coordinator with dead shards.
struct DegradeAll<'h, H: QueryHandler>(&'h H);

impl<H: QueryHandler> QueryHandler for DegradeAll<'_, H> {
    fn handle(&self, query: &Query, deadline: Deadline) -> Handled {
        match self.0.handle(query, deadline) {
            Handled::Response(response) => Handled::Degraded {
                degraded: DegradedInfo {
                    missing_shards: vec![2, 5],
                    reason: "shard 2 unreachable: connection reset".into(),
                },
                response: Some(response),
            },
            other => other,
        }
    }
}

#[test]
fn degraded_answers_surface_typed_with_the_partial_response() {
    let store = small_store(24, 12);
    let engine = EngineBuilder::new(Lev, &store, ALPHABET).build();
    let want = DegradedInfo {
        missing_shards: vec![2, 5],
        reason: "shard 2 unreachable: connection reset".into(),
    };
    let handler = DegradeAll(&engine);
    let server = Server::bind(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(handle.clone());
        let serving = scope.spawn(|| server.serve(&handler));
        let mut client = Client::connect(handle.local_addr())
            .expect("connect")
            // Degraded is an answer, not a rejection: the retry policy must
            // not resubmit it (asserted via `admitted` below).
            .with_retry_policy(RetryPolicy::new().max_attempts(3));

        let q = Query::threshold(vec![1, 2], 1.0).build().unwrap();
        let in_process = engine.handle(&q, Deadline::NONE);
        let Handled::Response(want_response) = in_process else {
            panic!("reference query must answer in-process");
        };

        let outcome = client
            .query_batch(std::slice::from_ref(&q))
            .expect("transport ok")
            .remove(0);
        match &outcome {
            QueryOutcome::Degraded { degraded, response } => {
                assert_eq!(degraded, &want, "DegradedInfo round-trips exactly");
                let got = response.as_ref().expect("partial answer rides along");
                assert_eq!(got.matches, want_response.matches);
            }
            other => panic!("expected a degraded outcome, got {other:?}"),
        }
        assert!(outcome.is_degraded() && !outcome.is_answered());
        assert!(
            outcome.response().is_none(),
            "degraded is not a clean answer"
        );

        // The strict single-query path refuses to paper over it.
        match client.query(&q).expect_err("strict path must fail") {
            ClientError::Degraded(d) => assert_eq!(d, want),
            other => panic!("expected ClientError::Degraded, got {other}"),
        }

        let stats = client.stats().expect("stats");
        assert_eq!(stats.degraded, 2);
        assert_eq!(stats.completed, 0, "degraded answers count separately");
        assert_eq!(stats.admitted, 2, "degraded answers are never resubmitted");

        drop(guard);
        serving.join().expect("serve thread").expect("serve ok");
    });
}
