//! Serve round trip: start the TCP front-end on a loopback ephemeral port,
//! drive a mixed workload through the [`Client`], and verify every served
//! `Response` equals the in-process answer.
//!
//! Demonstrates the full serving contract on one screen: bounded admission
//! (watch `queue_capacity` in the stats), per-query deadlines (a 1 ms
//! budget against a store-wide scan comes back as a typed
//! `deadline_exceeded`, not a late answer), live metrics over the wire,
//! and graceful shutdown draining in-flight queries.
//!
//! ```sh
//! cargo run --release --example serve_roundtrip
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, Query, TemporalConstraint, TimeInterval, VerifyMode};
use trajsearch_serve::{Client, ClientError, Server, ServerConfig, ServerErrorKind};
use wed::models::Edr;

fn main() {
    // A synthetic city, a database of trips, and an EDR engine over it.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(600)
        .lengths(30, 80)
        .seed(7)
        .generate(&net);
    let model = Edr::new(net.clone(), 100.0);
    let engine = EngineBuilder::new(&model, &store, net.num_vertices()).build();

    // Mixed workload cut from stored trips: thresholds and top-k.
    let workload: Vec<Query> = (0..24)
        .map(|i| {
            let t = store.get((i * 13) % store.len() as u32);
            let len = t.len().min(40);
            let q = t.subpath(0, len - 1).to_vec();
            let tau = (0.1 * len as f64).max(1.0);
            if i % 3 == 2 {
                Query::top_k(q, 5, tau, 4.0 * tau).build().expect("valid")
            } else {
                Query::threshold(q, tau).build().expect("valid")
            }
        })
        .collect();

    let server = Server::bind(ServerConfig {
        workers: 2,
        queue_capacity: 256,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let handle = server.handle();
    println!(
        "serving {} trajectories at {} with 2 workers, queue capacity 256",
        store.len(),
        handle.local_addr()
    );

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // Pipelined batch over one connection; replies return in
        // submission order even though workers finish out of order.
        let outcomes = client.query_batch(&workload).expect("batch transport");
        let mut total_matches = 0usize;
        for (i, (query, outcome)) in workload.iter().zip(&outcomes).enumerate() {
            let served = outcome.response().expect("no rejections at this load");
            let local = engine.run(query).expect("in-process reference");
            assert_eq!(served.matches, local.matches, "query {i} diverged");
            total_matches += served.matches.len();
        }
        println!(
            "{} queries served over TCP, {} matches, all byte-identical to in-process",
            workload.len(),
            total_matches
        );

        // A deadline the engine cannot meet: an infeasible-threshold query
        // forces a store-wide exact scan, and the 1 ms budget expires at a
        // cooperative checkpoint — the reply is a *typed* timeout.
        let q = store.get(0).subpath(0, 7).to_vec();
        let hopeless = Query::threshold(q, 1e7)
            .verify(VerifyMode::Sw)
            .temporal(TemporalConstraint::within(TimeInterval::new(0.0, 1.0)))
            .deadline_ms(1)
            .build()
            .expect("valid");
        match client.query(&hopeless) {
            Err(ClientError::Server(e)) if e.kind == ServerErrorKind::DeadlineExceeded => {
                println!("1 ms deadline query: typed timeout as expected ({e})");
            }
            other => println!("1 ms deadline query: unexpectedly {other:?}"),
        }

        // Metrics over the same protocol.
        let stats = client.stats().expect("stats");
        println!(
            "server metrics: {} completed, {} timed out, {} rejected, p99 wall {:.2} ms",
            stats.completed,
            stats.timed_out,
            stats.rejected_overload,
            stats.wall.p99_ns as f64 / 1e6
        );

        // Graceful shutdown: drains anything in flight, then serve returns.
        handle.shutdown();
        let final_metrics = serving.join().expect("serve thread").expect("serve ok");
        println!(
            "drained and stopped: queue depth {} at exit",
            final_metrics.queue_depth
        );
    });
}
