//! Sharded index construction: build the same postings index at several
//! shard counts, verify the search results are byte-identical, and print
//! the build-time curve.
//!
//! `ShardedIndex` partitions postings by `traj_id % num_shards`, so each
//! shard is built by its own scoped worker and appends touch exactly one
//! shard. The layout is invisible to search — this example asserts that by
//! comparing every result against the default single-list engine, including
//! after appending fresh trajectories to a live sharded index.
//!
//! ```sh
//! cargo run --release --example sharded_build
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use std::time::Instant;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, IndexLayout, PostingSource, Query, ShardedIndex};
use wed::models::Edr;
use wed::Sym;

fn main() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(800)
        .lengths(30, 80)
        .seed(7)
        .generate(&net);
    let edr = Edr::new(net.clone(), 150.0);
    let alphabet = net.num_vertices();
    println!(
        "database: {} trajectories on {} vertices; host has {} cpu(s)",
        store.len(),
        alphabet,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    // Reference: the paper's single-list index.
    let reference = EngineBuilder::new(&edr, &store, alphabet).build();
    let q: Vec<Sym> = store.get(3).path()[5..25].to_vec();
    let query = Query::threshold(q.clone(), 4.0).build().expect("valid");
    let want = reference.run(&query).expect("run");
    println!(
        "query |Q|={} tau=4: {} matches via the single-list index",
        q.len(),
        want.matches.len()
    );

    // The same store at several shard counts: identical results, parallel
    // construction.
    for shards in [1, 2, 4, 8] {
        let t0 = Instant::now();
        let engine = EngineBuilder::new(&edr, &store, alphabet)
            .layout(IndexLayout::Sharded(shards))
            .build();
        let built = t0.elapsed();
        let got = engine.run(&query).expect("run");
        assert_eq!(
            got.matches, want.matches,
            "sharding must not change results"
        );
        println!(
            "  {shards} shard(s): built {} postings in {built:.2?} — results identical",
            engine.index().total_postings(),
        );
    }

    // Appends touch exactly one shard; the grown index still matches a
    // fresh build over the grown store.
    let mut grown = store.clone();
    let mut idx = ShardedIndex::build_parallel(&store, alphabet, 4);
    for t in TripConfig::default()
        .count(50)
        .lengths(30, 80)
        .seed(99)
        .generate(&net)
        .iter()
        .map(|(_, t)| t.clone())
    {
        let id = grown.push(t.clone());
        idx.append(id, &t);
    }
    let appended = EngineBuilder::new(&edr, &grown, alphabet).build_with(idx);
    let rebuilt = EngineBuilder::new(&edr, &grown, alphabet).build();
    let a = appended.run(&query).expect("run");
    let b = rebuilt.run(&query).expect("run");
    assert_eq!(a.matches, b.matches, "append must equal rebuild");
    println!(
        "appended 50 trajectories shard-locally: {} matches, identical to a fresh build",
        a.matches.len()
    );
}
