//! Quickstart: build a road network, generate trajectories, index them, and
//! answer subtrajectory similarity queries under two different WED
//! instances with the *same* engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, Query};
use wed::models::{Edr, Lev};

fn main() {
    // 1. A synthetic city: jittered grid, one-way streets, removed blocks.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    println!(
        "network: {} vertices, {} directed edges (avg out-degree {:.2})",
        net.num_vertices(),
        net.num_edges(),
        net.avg_out_degree()
    );

    // 2. A trajectory database of purposeful trips with timestamps.
    let store = TripConfig::default()
        .count(500)
        .lengths(20, 60)
        .seed(7)
        .generate(&net);
    let stats = store.stats();
    println!(
        "database: {} trajectories, avg length {:.1}",
        stats.num_trajectories, stats.avg_length
    );

    // 3. A query: a subtrajectory of one of the stored trips.
    let source = store.get(3);
    let q = source.subpath(5, 24).to_vec();
    println!("query: {} vertices from trajectory 3", q.len());

    // 4. Search under Levenshtein distance: allow < 3 edits.
    let lev_engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();
    let query = Query::threshold(q.clone(), 3.0)
        .build()
        .expect("valid query");
    let out = lev_engine.run(&query).expect("run");
    println!(
        "\nLev, tau=3: {} matching subtrajectories in {} candidate checks",
        out.matches.len(),
        out.stats.candidates
    );
    for m in out.matches.iter().take(5) {
        println!(
            "  trajectory {:>4} [{:>3}..={:<3}]  wed = {}",
            m.id, m.start, m.end, m.dist
        );
    }

    // 5. Same engine, different similarity function: EDR with a 100 m
    //    matching tolerance. No algorithmic adaptation required.
    let edr = Edr::new(net.clone(), 100.0);
    let edr_engine = EngineBuilder::new(&edr, &store, net.num_vertices()).build();
    let out = edr_engine.run(&query).expect("run");
    println!(
        "\nEDR(eps=100m), tau=3: {} matches ({} candidates, {:.1}% of columns pruned)",
        out.matches.len(),
        out.stats.candidates,
        100.0 * (1.0 - out.stats.upr())
    );

    // 6. Every reported distance is exact.
    if let Some(m) = out.matches.first() {
        let p = store.get(m.id).path();
        let direct = wed::wed(&edr, &p[m.start..=m.end], &q);
        assert!((m.dist - direct).abs() < 1e-9);
        println!(
            "verified: reported distance {:.3} equals direct DP {:.3}",
            m.dist, direct
        );
    }
}
