//! Traced query: attach a `trace_id` to a wire query, fetch its per-phase
//! timeline back through the `trace` request, and print a flame-style
//! breakdown — queue wait, filter, lookups and verification as nested
//! bars, plus the Prometheus exposition the same server renders.
//!
//! The tracing contract on display: a traced query's matches are
//! byte-identical to the untraced run (checked below), the timeline
//! nests engine phases under the root `query` span, and an id the server
//! never saw answers with an empty list instead of an error.
//!
//! ```sh
//! cargo run --release --example traced_query
//! ```

use rnet::{CityParams, NetworkKind};
use std::collections::HashMap;
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, Query, VerifyMode};
use trajsearch_serve::{Client, Server, ServerConfig, WireSpan};
use wed::models::Edr;

/// Print one timeline as a flame-style tree: indentation by span depth,
/// a bar proportional to each span's share of the trace wall time.
fn print_flame(spans: &[WireSpan], wall_ns: u64) {
    const BAR: usize = 40;
    let depth_of = |span: &WireSpan| {
        let by_id: HashMap<u64, &WireSpan> = spans.iter().map(|s| (s.span_id, s)).collect();
        let mut depth = 0;
        let mut cursor = span.parent_id;
        while let Some(parent) = by_id.get(&cursor) {
            depth += 1;
            cursor = parent.parent_id;
        }
        depth
    };
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    for span in spans {
        let share = span.dur_ns as f64 / wall_ns.max(1) as f64;
        let filled = ((share * BAR as f64).round() as usize).min(BAR);
        println!(
            "  {:>8.1}us  {:indent$}{:<12} {}{} {:>5.1}%",
            (span.start_ns - t0) as f64 / 1e3,
            "",
            span.name,
            "█".repeat(filled.max(1)),
            " ".repeat(BAR - filled.max(1)),
            100.0 * share,
            indent = 2 * depth_of(span),
        );
    }
}

fn main() {
    // A synthetic city, a trip database, and an EDR engine over it.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(400)
        .lengths(30, 80)
        .seed(11)
        .generate(&net);
    let model = Edr::new(net.clone(), 100.0);
    let engine = EngineBuilder::new(&model, &store, net.num_vertices()).build();

    let server = Server::bind(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let handle = server.handle();
    println!(
        "serving {} trajectories at {}",
        store.len(),
        handle.local_addr()
    );

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(&engine));
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        // A real query cut from a stored trip, run untraced then traced.
        let t = store.get(17);
        let q = t.subpath(0, t.len().min(40) - 1).to_vec();
        let tau = (0.15 * q.len() as f64).max(1.0);
        let query = Query::threshold(q, tau)
            .verify(VerifyMode::Trie)
            .build()
            .expect("valid query");

        let untraced = client.query(&query).expect("untraced");
        const TRACE_ID: u64 = 0xCAFE;
        let traced = client.query_traced(&query, TRACE_ID).expect("traced");
        assert_eq!(
            traced.matches, untraced.matches,
            "tracing must not change the answer"
        );
        println!(
            "query answered: {} matches, {} candidates (identical with and without tracing)",
            traced.matches.len(),
            traced.stats.candidates
        );

        // Fetch the timeline back over the same connection.
        let entries = client.trace(Some(TRACE_ID)).expect("trace fetch");
        for entry in &entries {
            println!(
                "\ntrace {:#x}: {} spans over {:.1}us",
                entry.trace_id,
                entry.spans.len(),
                entry.wall_ns as f64 / 1e3
            );
            print_flame(&entry.spans, entry.wall_ns);
        }
        assert!(
            client.trace(Some(TRACE_ID + 1)).expect("fetch").is_empty(),
            "unknown ids answer empty, not an error"
        );

        // The same server renders Prometheus text exposition.
        let text = client.metrics_text().expect("metrics_text");
        println!("\nmetrics_text excerpt:");
        for line in text
            .lines()
            .filter(|l| l.starts_with("trajsearch_queries") || l.contains("wall_ns_count"))
        {
            println!("  {line}");
        }

        handle.shutdown();
        serving.join().expect("join").expect("serve ok");
    });
    println!("\ndone: traced and untraced answers matched byte-for-byte");
}
