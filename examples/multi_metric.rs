//! Multi-metric search: the same engine answering the same pattern under
//! weighted edit distance, DTW, LCSS(ε) and discrete Fréchet — the metric
//! is a per-query choice (`.metric(..)` on the builder), and one
//! `run_batch` call mixes them freely.
//!
//! ```sh
//! cargo run --release --example multi_metric
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{BatchOptions, EngineBuilder, Metric, Query};
use wed::models::Lev;

fn main() {
    // A synthetic city and a database of purposeful trips.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(500)
        .lengths(20, 60)
        .seed(7)
        .generate(&net);

    // One engine, one index: the metric does not shape the index, only the
    // verification back half (and how much of the filter front half is
    // sound to reuse — see the README "Metrics" table).
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();

    // A pattern copied from a stored trip, so matches exist everywhere.
    let q = store.get(3).subpath(5, 20).to_vec();
    println!("pattern: {} vertices from trajectory 3\n", q.len());

    // A threshold request under each metric. τ means something different
    // per metric: edit cost (WED), summed coupling cost (DTW), unmatched
    // query symbols (LCSS) — and for Fréchet the *bottleneck* cost, which
    // does not add over the pattern, so its budget is per coupling step
    // (τ ≥ one substitution cost would match every window).
    let metrics = [
        (Metric::Wed, 3.0),
        (Metric::Dtw, 3.0),
        (Metric::Lcss { eps: 0.0 }, 3.0),
        (Metric::Frechet, 0.5),
    ];
    let workload: Vec<Query> = metrics
        .iter()
        .map(|&(metric, tau)| {
            Query::threshold(q.clone(), tau)
                .metric(metric)
                .build()
                .expect("valid query")
        })
        .collect();

    // All four metrics through one batch call — dispatch is per query.
    let batch = engine
        .run_batch(&workload, BatchOptions::with_threads(2))
        .expect("batch admitted");
    for (query, out) in workload.iter().zip(&batch.responses) {
        println!(
            "{:>8}: {:>3} matches, {:>4} candidates, verify_cost {:>6}{}",
            query.metric().name(),
            out.matches.len(),
            out.stats.candidates,
            out.stats.verify_cost,
            if out.stats.fallback {
                "  (exact fallback scan)"
            } else {
                ""
            }
        );
    }

    // The wire format carries the metric as one optional field; WED
    // queries encode without it, so pre-metrics JSON remains valid.
    let dtw_wire = workload[1].to_json();
    assert!(dtw_wire.contains("\"metric\""));
    assert!(!workload[0].to_json().contains("\"metric\""));
    println!("\nDTW on the wire: {dtw_wire}");
}
