//! Alternative-route suggestion (§6.2.2): find in the database variations
//! of a planned route between the same origin and destination, and rank
//! them by naturalness (how directly they head for the destination).
//!
//! ```sh
//! cargo run --release --example alternative_routes
//! ```

use rnet::dijkstra::{shortest_path, Mode};
use rnet::{CityParams, HubLabels, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, Query};
use wed::models::Lev;

fn main() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(23).generate());
    let hubs = HubLabels::build(&net);
    let store = TripConfig::default()
        .count(1_000)
        .lengths(20, 70)
        .seed(9)
        .generate(&net);
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();

    // The planned route: like the paper, take a stretch a real trip
    // traveled, then re-plan it as a shortest path between its endpoints —
    // the database is likely to contain variations of popular stretches.
    let probe = store.get(7);
    let stretch = probe.subpath(2, 2 + 25.min(probe.len() - 3));
    let (u, v) = (stretch[0], *stretch.last().unwrap());
    let (q, cost) = shortest_path(&net, u, v, Mode::DirectedLength).expect("connected network");
    println!(
        "planned route: {} vertices, {:.0} m from {u} to {v}",
        q.len(),
        cost
    );

    // Subtrajectories similar to the plan (up to 40% of hops edited).
    let tau = (0.4 * q.len() as f64).max(1.0);
    let out = engine
        .run(
            &Query::threshold(q.clone(), tau)
                .build()
                .expect("valid query"),
        )
        .expect("run");

    // Keep only true u->v routes and score their naturalness: the fraction
    // of hops that get strictly closer (network distance) to v than ever.
    let naturalness = |route: &[u32]| -> f64 {
        let mut closest = f64::INFINITY;
        let mut closer = 0usize;
        for (i, &p) in route.iter().enumerate() {
            let dist = hubs.query(p, v);
            if i > 0 && dist < closest {
                closer += 1;
            }
            closest = closest.min(dist);
        }
        closer as f64 / (route.len() - 1).max(1) as f64
    };

    let mut suggestions: Vec<(f64, f64, Vec<u32>)> = Vec::new();
    for m in &out.matches {
        let route = store.get(m.id).subpath(m.start, m.end);
        if route.first() == Some(&u) && route.last() == Some(&v) {
            suggestions.push((naturalness(route), m.dist, route.to_vec()));
        }
    }
    suggestions.sort_by(|a, b| b.0.total_cmp(&a.0));
    suggestions.dedup_by(|a, b| a.2 == b.2);

    println!("\n{} alternative routes found:", suggestions.len());
    for (nat, dist, route) in suggestions.iter().take(8) {
        println!(
            "  naturalness {:.3}  edit distance {:>4.1}  {} vertices",
            nat,
            dist,
            route.len()
        );
    }
    if suggestions.is_empty() {
        println!("  (no stored trip happens to connect u to v — rerun with more trips)");
    }
}
