//! Distributed cluster on one screen: three shard servers answering the
//! versioned shard-RPC surface, a coordinator serving the ordinary query
//! protocol over them, and a client that cannot tell the difference — until
//! a shard dies, when replies turn into *typed* degraded envelopes naming
//! the missing shard instead of silently wrong answers.
//!
//! Topology (all loopback TCP, in one process for the example):
//!
//! ```text
//! Client ──query──▶ Coordinator ──shard RPCs──▶ shard 0 │ shard 1 │ shard 2
//! ```
//!
//! ```sh
//! cargo run --release --example distributed_cluster
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, IndexShard, Query, RemoteSpec};
use trajsearch_distrib::Coordinator;
use trajsearch_serve::{Client, IndexShardSource, QueryOutcome, Server, ServerConfig};
use wed::models::Edr;

const NUM_SHARDS: usize = 3;
const EPOCH: u64 = 1;

fn main() {
    // A synthetic city, a database of trips, and an EDR model over it. The
    // coordinator and every shard server hold the same store: shards serve
    // postings, the coordinator verifies candidates locally.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(600)
        .lengths(30, 80)
        .seed(7)
        .generate(&net);
    let model = Edr::new(net.clone(), 100.0);
    let alphabet = net.num_vertices();

    // One IndexShard per server: trajectories with id % NUM_SHARDS == k.
    let shards: Vec<IndexShard> = (0..NUM_SHARDS)
        .map(|k| IndexShard::build(&store, alphabet, k, NUM_SHARDS))
        .collect();
    let sources: Vec<IndexShardSource<'_>> = shards
        .iter()
        .map(|s| IndexShardSource::new(s, EPOCH))
        .collect();
    let shard_servers: Vec<Server> = sources
        .iter()
        .map(|_| Server::bind(ServerConfig::default()).expect("bind shard server"))
        .collect();
    let shard_handles: Vec<_> = shard_servers.iter().map(Server::handle).collect();
    let endpoints: Vec<String> = shard_servers
        .iter()
        .map(|s| s.local_addr().to_string())
        .collect();
    println!("shard servers: {}", endpoints.join(", "));

    // The in-process reference the cluster must match byte for byte.
    let reference = EngineBuilder::new(&model, &store, alphabet).build();

    let workload: Vec<Query> = (0..12)
        .map(|i| {
            let t = store.get((i * 13) % store.len() as u32);
            let len = t.len().min(40);
            let q = t.subpath(0, len - 1).to_vec();
            let tau = (0.1 * len as f64).max(1.0);
            Query::threshold(q, tau).build().expect("valid")
        })
        .collect();

    std::thread::scope(|scope| {
        let mut shard_threads = Vec::new();
        for (server, source) in shard_servers.into_iter().zip(&sources) {
            shard_threads.push(scope.spawn(move || server.serve_shard(source)));
        }

        // The coordinator: a full engine whose postings arrive over the
        // shard RPCs (version-negotiated, epoch-checked), fronted by the
        // ordinary query server.
        let coordinator = Coordinator::connect(
            &model,
            &store,
            alphabet,
            &RemoteSpec::new(endpoints.iter().cloned()),
        )
        .expect("connect shard cluster");
        let coord_server = Server::bind(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("bind coordinator");
        let coord_handle = coord_server.handle();
        println!("coordinator:   {}", coord_handle.local_addr());
        let coord_thread = scope.spawn(move || coord_server.serve(&coordinator));

        // A client speaking the ordinary query protocol; the shard RPCs
        // behind each answer are invisible to it.
        let mut client = Client::connect(coord_handle.local_addr()).expect("connect");
        let outcomes = client.query_batch(&workload).expect("batch transport");
        for (i, (query, outcome)) in workload.iter().zip(&outcomes).enumerate() {
            let served = outcome.response().expect("healthy cluster answers cleanly");
            let local = reference.run(query).expect("in-process reference");
            assert_eq!(served.matches, local.matches, "query {i} diverged");
        }
        println!(
            "{} queries answered through the cluster, byte-identical to in-process",
            workload.len()
        );

        // Kill shard 1. The next query needing its postings cannot be
        // answered completely — the reply is a typed degraded envelope
        // naming the missing shard (carrying the partial answer), never a
        // silently wrong result.
        shard_handles[1].shutdown();
        let fresh = store.get(101).subpath(0, 9).to_vec();
        let probe = Query::threshold(fresh, 2.0).build().expect("valid");
        match client
            .query_batch(&[probe])
            .expect("transport ok")
            .remove(0)
        {
            QueryOutcome::Degraded { degraded, response } => {
                println!(
                    "shard 1 down: typed degraded reply (missing shards {:?}, partial answer \
                     with {} matches) — \"{}\"",
                    degraded.missing_shards,
                    response.map(|r| r.matches.len()).unwrap_or(0),
                    degraded.reason
                );
            }
            other => println!("shard 1 down: unexpectedly {other:?}"),
        }
        let stats = client.stats().expect("stats");
        println!(
            "coordinator metrics: {} completed, {} degraded",
            stats.completed, stats.degraded
        );

        // Orderly teardown: coordinator first, then the surviving shards.
        coord_handle.shutdown();
        coord_thread
            .join()
            .expect("coordinator thread")
            .expect("serve ok");
        for handle in &shard_handles {
            handle.shutdown();
        }
        for t in shard_threads {
            t.join().expect("shard thread").expect("serve ok");
        }
        println!("cluster drained and stopped");
    });
}
