//! Travel-time estimation along a query path (§6.2.1 of the paper, and the
//! motivating application of subtrajectory similarity search).
//!
//! When few historical trajectories traveled *exactly* the query path
//! (sparse data), averaging the travel times of *similar* subtrajectories
//! gives a usable estimate. This example plants a ground-truth path, finds
//! similar subtrajectories under SURS, and compares estimates.
//!
//! ```sh
//! cargo run --release --example travel_time_estimation
//! ```

use rnet::{CityParams, NetworkKind};
use std::collections::HashMap;
use std::sync::Arc;
use traj::edges::store_to_edges;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, Query};
use wed::models::Surs;
use wed::WedInstance;

fn main() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(11).generate());
    let store = TripConfig::default()
        .count(800)
        .lengths(20, 80)
        .seed(3)
        .generate(&net);
    // SURS works on the edge representation: road segments with lengths.
    let edge_store = store_to_edges(&net, &store);
    let surs = Surs::new(net.clone());
    let engine = EngineBuilder::new(&surs, &edge_store, net.num_edges()).build();

    // Query: a 15-edge stretch of a stored trip.
    let probe = edge_store.get(17);
    let q = probe.subpath(2, 16).to_vec();
    let total_cost: f64 = q.iter().map(|&s| surs.lower_cost(s)).sum();

    // Exact matches (tau -> 0+): usually sparse.
    let exact = engine
        .run(
            &Query::threshold(q.clone(), 1e-9_f64.max(total_cost * 1e-6))
                .build()
                .expect("valid query"),
        )
        .expect("run");
    let mut exact_ids: Vec<u32> = exact.matches.iter().map(|m| m.id).collect();
    exact_ids.dedup();
    println!("exact matches: {} subtrajectories", exact.matches.len());

    // Similar matches: allow 10% of the query's road length to differ.
    let tau = 0.10 * total_cost;
    let out = engine
        .run(
            &Query::threshold(q.clone(), tau)
                .build()
                .expect("valid query"),
        )
        .expect("run");
    println!(
        "similar matches (tau = 10% of path length): {}",
        out.matches.len()
    );

    // Per-trajectory best match -> travel time sample.
    let mut best: HashMap<u32, (f64, usize, usize)> = HashMap::new();
    for m in &out.matches {
        let e = best.entry(m.id).or_insert((f64::INFINITY, 0, 0));
        if m.dist < e.0 {
            *e = (m.dist, m.start, m.end);
        }
    }
    let samples: Vec<f64> = best
        .iter()
        .map(|(&id, &(_, s, t))| {
            let traj = store.get(id); // vertex twin holds the timestamps
            let vt = (t + 1).min(traj.len() - 1);
            traj.travel_time(s, vt)
        })
        .collect();

    let avg = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let truth = {
        let t = store.get(17);
        t.travel_time(2, 17.min(t.len() - 1))
    };
    println!(
        "\nestimated travel time: {avg:.1} s from {} samples",
        samples.len()
    );
    println!("ground-truth trip time: {truth:.1} s");
    println!(
        "relative error: {:.1}%",
        100.0 * (avg - truth).abs() / truth.max(1e-9)
    );
}
