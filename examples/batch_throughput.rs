//! Batch throughput: answer a whole query workload with the parallel batch
//! engine and compare queries/sec across worker-thread counts.
//!
//! The batch engine fans whole queries out across scoped threads (each
//! worker keeps its own DP-trie caches), so results are identical to running
//! the queries one by one — this example asserts that, then prints the
//! throughput curve. Expect the speedup to flatten at the host's core count.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::SearchEngine;
use wed::models::Edr;
use wed::Sym;

fn main() {
    // A synthetic city and a trajectory database of purposeful trips.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(800)
        .lengths(30, 80)
        .seed(7)
        .generate(&net);
    println!(
        "database: {} trajectories on {} vertices; host has {} cpu(s)",
        store.len(),
        net.num_vertices(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // EDR with a 100 m matching threshold; a workload of 32 queries cut from
    // stored trips, each allowed ~10% edits.
    let model = Edr::new(net.clone(), 100.0);
    let engine = SearchEngine::new(&model, &store, net.num_vertices());
    let workload: Vec<(Vec<Sym>, f64)> = (0..32)
        .map(|i| {
            let t = store.get((i * 13) % store.len() as u32);
            let len = t.len().min(40);
            let q = t.subpath(0, len - 1).to_vec();
            let tau = (0.1 * len as f64).max(1.0);
            (q, tau)
        })
        .collect();

    // Sequential reference (1 worker) — every parallel run must match it.
    let reference = engine.search_batch(&workload, BatchOptions::with_threads(1));
    println!(
        "workload: {} queries, {} total matches\n",
        reference.stats.queries, reference.stats.merged.results
    );

    println!("threads  wall ms    cpu ms     q/s    speedup");
    let base_qps = reference.stats.queries_per_sec();
    for threads in [1, 2, 4, 8] {
        let out = engine.search_batch(&workload, BatchOptions::with_threads(threads));
        for (got, want) in out.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.matches, want.matches, "parallel run diverged");
        }
        println!(
            "{:>7}  {:>8.2}  {:>8.2}  {:>6.1}  {:>6.2}x",
            out.stats.threads,
            out.stats.wall_time.as_secs_f64() * 1e3,
            out.stats.cpu_time.as_secs_f64() * 1e3,
            out.stats.queries_per_sec(),
            out.stats.queries_per_sec() / base_qps.max(f64::MIN_POSITIVE),
        );
    }
    println!("\nall thread counts returned identical results");
}
