//! Batch throughput: answer a whole *mixed* workload with the unified batch
//! engine and compare queries/sec across worker-thread counts.
//!
//! `SearchEngine::run_batch` fans whole queries out across scoped threads
//! (each worker keeps its own DP-trie caches), so results are identical to
//! running the queries one by one — this example asserts that, then prints
//! the throughput curve. Because every `Query` is self-contained, one batch
//! freely mixes threshold and top-k objectives (impossible with the retired
//! tuple-workload API). Expect the speedup to flatten at the host's core
//! count.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::batch::BatchOptions;
use trajsearch_core::{EngineBuilder, Query};
use wed::models::Edr;

fn main() {
    // A synthetic city and a trajectory database of purposeful trips.
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(800)
        .lengths(30, 80)
        .seed(7)
        .generate(&net);
    println!(
        "database: {} trajectories on {} vertices; host has {} cpu(s)",
        store.len(),
        net.num_vertices(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // EDR with a 100 m matching threshold; a mixed workload of 32 queries
    // cut from stored trips: two in three are thresholds with ~10% edit
    // budget, every third asks for the top-5 trajectories instead.
    let model = Edr::new(net.clone(), 100.0);
    let engine = EngineBuilder::new(&model, &store, net.num_vertices()).build();
    let workload: Vec<Query> = (0..32)
        .map(|i| {
            let t = store.get((i * 13) % store.len() as u32);
            let len = t.len().min(40);
            let q = t.subpath(0, len - 1).to_vec();
            let tau = (0.1 * len as f64).max(1.0);
            if i % 3 == 2 {
                Query::top_k(q, 5, tau, 4.0 * tau).build().expect("valid")
            } else {
                Query::threshold(q, tau).build().expect("valid")
            }
        })
        .collect();

    // Sequential reference (1 worker) — every parallel run must match it.
    let reference = engine
        .run_batch(&workload, BatchOptions::with_threads(1))
        .expect("workload admitted");
    println!(
        "workload: {} queries (threshold + top-k mixed), {} total matches\n",
        reference.stats.queries, reference.stats.merged.results
    );

    println!("threads  wall ms    cpu ms     q/s    speedup");
    let base_qps = reference.stats.queries_per_sec();
    for threads in [1, 2, 4, 8] {
        let out = engine
            .run_batch(&workload, BatchOptions::with_threads(threads))
            .expect("workload admitted");
        for (got, want) in out.responses.iter().zip(&reference.responses) {
            assert_eq!(got.matches, want.matches, "parallel run diverged");
        }
        println!(
            "{:>7}  {:>8.2}  {:>8.2}  {:>6.1}  {:>6.2}x",
            out.stats.threads,
            out.stats.wall_time.as_secs_f64() * 1e3,
            out.stats.cpu_time.as_secs_f64() * 1e3,
            out.stats.queries_per_sec(),
            out.stats.queries_per_sec() / base_qps.max(f64::MIN_POSITIVE),
        );
    }
    println!("\nall thread counts returned identical results");
}
