//! Snapshot persistence round trip: build a store + index, persist them to
//! a versioned, checksummed snapshot file, reopen cold, and serve a query
//! from the reopened engine — verified byte-identical to the engine that
//! never left memory.
//!
//! The reopened index is a `CompactIndex`: delta+varint postings in one
//! contiguous arena, decoded on iteration, with a footprint well below the
//! in-memory `InvertedIndex`. The example also demonstrates the typed
//! failure surface: a bit-flipped copy of the file refuses to open with a
//! `SnapshotError` instead of panicking or serving wrong data.
//!
//! ```sh
//! cargo run --release --example snapshot_roundtrip
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use std::time::Instant;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, InvertedIndex, PostingSource, Query};
use trajsearch_persist::Snapshot;
use wed::models::Edr;
use wed::Sym;

fn main() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(42).generate());
    let store = TripConfig::default()
        .count(800)
        .lengths(30, 80)
        .seed(7)
        .generate(&net);
    let edr = Edr::new(net.clone(), 150.0);
    let alphabet = net.num_vertices();

    // Build once — the cost a snapshot lets every later process skip.
    let t0 = Instant::now();
    let mut index = InvertedIndex::build(&store, alphabet);
    index.enable_temporal_postings();
    println!(
        "built: {} trajectories, {} postings, {} index bytes in {:.1?}",
        store.len(),
        index.total_postings(),
        index.size_bytes(),
        t0.elapsed()
    );

    let query = {
        let q: Vec<Sym> = store.get(3).path()[5..25].to_vec();
        Query::threshold(q, 4.0).build().expect("valid")
    };
    let warm = EngineBuilder::new(&edr, &store, alphabet).build_with(index);
    let want = warm.run(&query).expect("warm run");
    println!("warm engine: {} matches", want.matches.len());

    // Persist. The write is atomic (tmp file + rename) and canonical: any
    // layout of the same logical index produces identical bytes.
    let path = std::env::temp_dir().join("trajsearch_example.snap");
    let t0 = Instant::now();
    let info = Snapshot::write(&path, &store, warm.index()).expect("snapshot written");
    println!(
        "snapshot: {} bytes, {} sections (temporal: {}) in {:.1?}",
        info.file_bytes,
        info.sections,
        info.temporal,
        t0.elapsed()
    );

    // Cold start in a "new process": open + checksum + validated decode,
    // no rebuild. The reopened index answers byte-identically.
    let t0 = Instant::now();
    let snapshot = Snapshot::open(&path).expect("snapshot reopens");
    let (cold_store, compact) = snapshot.into_parts();
    let cold = EngineBuilder::new(&edr, &cold_store, alphabet).build_with(compact);
    let got = cold.run(&query).expect("cold run");
    println!(
        "cold engine: {} matches in {:.1?} from open to answer, {} index bytes ({:.0}% of in-memory)",
        got.matches.len(),
        t0.elapsed(),
        cold.index().size_bytes(),
        100.0 * cold.index().size_bytes() as f64 / warm.index().size_bytes() as f64
    );
    assert_eq!(got.matches, want.matches, "cold results must be identical");

    // Corruption refuses loudly: flip one payload byte and reopen.
    let mut bytes = std::fs::read(&path).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let corrupted = path.with_extension("corrupt.snap");
    std::fs::write(&corrupted, &bytes).expect("write corrupt copy");
    match Snapshot::open(&corrupted) {
        Err(e) => println!("corrupted copy refused as expected: {e}"),
        Ok(_) => unreachable!("a flipped byte must never decode"),
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&corrupted).ok();
}
