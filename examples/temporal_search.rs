//! Temporal subtrajectory search (§4.3): restrict matches to a rush-hour
//! window and compare the TF (pre-filter) and no-TF (post-process)
//! strategies — both return identical results, TF does less verification.
//!
//! ```sh
//! cargo run --release --example temporal_search
//! ```

use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::TripConfig;
use trajsearch_core::{EngineBuilder, Query, TemporalConstraint, TimeInterval, VerifyMode};
use wed::models::Lev;

fn main() {
    let net = Arc::new(CityParams::small(NetworkKind::City).seed(31).generate());
    let store = TripConfig::default()
        .count(1_500)
        .lengths(15, 50)
        .seed(13)
        .generate(&net);
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();

    let q = store.get(42).subpath(3, 14).to_vec();
    let tau = 3.0;

    // A two-hour window around the probe trip's departure (timestamps are
    // seconds from midnight), so the window is guaranteed non-empty.
    let depart = store.get(42).departure();
    let rush = TimeInterval::new((depart - 3600.0).max(0.0), depart + 3600.0);
    let constraint = TemporalConstraint::overlaps(rush);

    let tf = engine
        .run(
            &Query::threshold(q.clone(), tau)
                .verify(VerifyMode::Trie)
                .temporal(constraint)
                .temporal_filter(true)
                .build()
                .expect("valid query"),
        )
        .expect("run");
    let no_tf = engine
        .run(
            &Query::threshold(q.clone(), tau)
                .verify(VerifyMode::Trie)
                .temporal(constraint)
                .temporal_filter(false)
                .build()
                .expect("valid query"),
        )
        .expect("run");

    assert_eq!(
        tf.matches.len(),
        no_tf.matches.len(),
        "strategies must agree"
    );
    println!("query: {} vertices, tau = {tau}", q.len());
    println!("matches overlapping the window: {}", tf.matches.len());
    println!(
        "TF verified {} of {} candidates; no-TF verified all {}",
        tf.stats.candidates_after_temporal,
        tf.stats.candidates,
        no_tf.stats.candidates_after_temporal,
    );
    println!(
        "TF stepDP calls: {}   no-TF stepDP calls: {}",
        tf.stats.stepdp_calls, no_tf.stats.stepdp_calls
    );

    for m in tf.matches.iter().take(5) {
        let t = store.get(m.id);
        println!(
            "  trajectory {:>4} [{}..={}] departs {:>7.0}s wed={}",
            m.id,
            m.start,
            m.end,
            t.times()[m.start],
            m.dist
        );
    }

    // Without the temporal constraint there are at least as many matches.
    let unconstrained = engine
        .run(
            &Query::threshold(q.clone(), tau)
                .build()
                .expect("valid query"),
        )
        .expect("run");
    assert!(unconstrained.matches.len() >= tf.matches.len());
    println!(
        "without temporal constraint: {} matches",
        unconstrained.matches.len()
    );
}
