//! Map matching: from raw (noisy) GPS observations to a network-constrained
//! trajectory ready for indexing — the preprocessing step the paper applies
//! to its taxi datasets (§2.1, Newson–Krumm HMM).
//!
//! ```sh
//! cargo run --release --example map_matching
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rnet::{CityParams, NetworkKind};
use std::sync::Arc;
use traj::generator::random_walk;
use traj::mapmatch::{noisy_trace, MapMatcher};
use traj::{Trajectory, TrajectoryStore};
use trajsearch_core::{EngineBuilder, Query};
use wed::models::Lev;

fn main() {
    let net = Arc::new(CityParams::small(NetworkKind::Grid).seed(4).generate());
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // A vehicle drives a 25-vertex route; we observe it every other vertex
    // with 12 m GPS noise.
    let truth = random_walk(&net, &mut rng, 123, 25);
    let trace = noisy_trace(&net, &truth, 12.0, 2, &mut rng);
    println!(
        "ground truth: {} vertices; observed {} noisy GPS points",
        truth.len(),
        trace.len()
    );

    // HMM decoding: Gaussian emissions (sigma = 15 m), transition scale
    // beta = 60 m.
    let matcher = MapMatcher::new(&net, 15.0, 60.0);
    let matched = matcher.match_trace(&trace).expect("decodable trace");
    assert!(
        net.is_path(&matched),
        "matcher must return a connected path"
    );

    let truth_set: std::collections::HashSet<_> = truth.iter().collect();
    let recovered = matched.iter().filter(|v| truth_set.contains(v)).count();
    println!(
        "matched path: {} vertices, {}/{} ground-truth vertices recovered",
        matched.len(),
        recovered,
        truth.len()
    );

    // The matched trajectory drops straight into the search pipeline.
    let mut store = TrajectoryStore::new();
    let id = store.push(Trajectory::untimed(matched));
    for _ in 0..40 {
        let start = rand::Rng::gen_range(&mut rng, 0..net.num_vertices() as u32);
        store.push(Trajectory::untimed(random_walk(&net, &mut rng, start, 25)));
    }
    let engine = EngineBuilder::new(&Lev, &store, net.num_vertices()).build();

    // Query: the middle stretch of the original (pre-noise) route.
    let q = &truth[8..18];
    let out = engine
        .run(&Query::threshold(q, 3.0).build().expect("valid query"))
        .expect("run");
    let hit = out.matches.iter().find(|m| m.id == id);
    match hit {
        Some(m) => println!(
            "search for the clean stretch finds the matched trajectory: [{}..={}] wed={}",
            m.start, m.end, m.dist
        ),
        None => println!("matched trajectory not found (noise too high this run)"),
    }
    println!("total matches in the database: {}", out.matches.len());
}
